"""Vectorized grouping: NaN-canonical keys, factorize + segment reductions.

This module is the grouping engine behind ``AggregateOp`` and ``DistinctOp``
(and the NaN-canonical key helpers the graph side's ``AllDistinct`` shares).
It replaces the per-row Python-dict walk — the last scalar holdout of the
columnar runtime — with a three-step array pipeline per batch:

1. **Factorize** each key column to dense group codes.  ndarray columns go
   through one C-level ``np.unique(return_inverse=True)``; object columns
   (strings with NULLs, promoted storage, computed expressions) take a
   loss-free dict walk that produces the same codes.
2. **Combine** multi-key codes by mixed-radix arithmetic into a single code
   column, then re-factorize it — group keys decode back out of the radix,
   so per-row tuples are never built.
3. **Segment-reduce** the aggregate arguments: COUNT via ``np.bincount``,
   SUM/AVG/MIN/MAX via one stable argsort of the codes plus
   ``ufunc.reduceat`` over the sorted values.  NULL-bearing argument
   columns (plain lists) reduce through an equivalent skip-NULL loop.

Batches then merge into the streaming state by *group*, not by row, so the
Python-dict work scales with the number of distinct keys per batch.

**Key semantics** (shared by every engine/backend combination):

* NULL (``None``) is a regular grouping value: all NULL keys form one
  group, as SQL's ``GROUP BY`` / ``DISTINCT`` treatment of NULLs requires.
* Float ``NaN`` keys are **canonicalized** to a single module-level NaN
  (:data:`NAN`) before they are hashed or compared.  ``NaN != NaN`` would
  otherwise put every NaN row in its own group (dict identity) while
  ``np.unique`` collapses them — the semantics bug this module fixes;
  Postgres and DuckDB both group NaNs together.
* Aggregates skip NULLs; an aggregate over no non-NULL input is NULL
  (COUNT: 0).  For MIN/MAX over floats, NaN orders **above** every other
  value (the Postgres rule): ``MIN`` only returns NaN when all inputs are
  NaN, ``MAX`` returns NaN when any input is.  This is what the segment
  reductions (``np.fmin`` / ``np.maximum``) compute natively, and the
  row-path accumulators mirror it so the engines agree by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.errors import PlanError
from repro.exec import vector
from repro.exec.vector import is_ndarray

#: The canonical NaN key.  Python dicts and sets shortcut equality with an
#: identity check, so routing every NaN through this one object makes NaN
#: keys hash- and lookup-stable even though ``NaN != NaN``.
NAN = float("nan")

#: Sentinel for "no non-NULL value seen yet" in MIN/MAX cells.
MISSING = object()

#: Mixed-radix code combination stays in exact int64; beyond this radix the
#: per-batch key space cannot be combined losslessly, so grouping falls back
#: to the per-row tuple walk for that batch (≥7 near-full-cardinality keys —
#: not a shape any tracked workload produces).
_MAX_RADIX = 1 << 62


def canonical(value: Any) -> Any:
    """``value`` with NaN replaced by the canonical :data:`NAN` object.

    Only NaN-like values are not self-equal, so the test is one C-level
    comparison for every ordinary key (ints, strings, None, dates).
    """
    if value != value:
        return NAN
    return value


def canonical_row(row: tuple) -> tuple:
    """``row`` with every NaN element canonicalized (same object when clean)."""
    for v in row:
        if v != v:
            return tuple(canonical(v) for v in row)
    return row


def sequence_has_nan(values: Sequence) -> bool:
    """True when a column holds any NaN (C-level scan for float ndarrays).

    Non-float ndarrays answer in O(1); generic sequences pay one comparison
    per element — still far cheaper than canonicalizing every row.
    """
    if is_ndarray(values):
        if values.dtype.kind != "f":
            return False
        return bool(vector._np.isnan(values).any())
    for v in values:
        if v != v:
            return True
    return False


def canonical_column(values: Sequence) -> Sequence:
    """A column as plain Python values with every NaN canonicalized.

    Row-boundary helper: the result is safe to zip into key tuples that
    hash/compare without per-row canonicalization.  Clean inputs come back
    untouched (the input object for lists, ``tolist`` for ndarrays); dirty
    float ndarrays pay one ``tolist`` plus O(#NaN) patches.
    """
    if is_ndarray(values):
        if values.dtype.kind != "f":
            return vector.as_values(values)
        np = vector._np
        mask = np.isnan(values)
        vals = values.tolist()
        if mask.any():
            for i in np.flatnonzero(mask).tolist():
                vals[i] = NAN
        return vals
    for v in values:
        if v != v:
            return [NAN if v != v else v for v in values]
    return values


def bindings_equal(a: Any, b: Any) -> bool:
    """Grouping-key equality: identity-or-equality after canonicalization.

    Matches dict/set key semantics (two canonical NaNs are the same object,
    hence equal) — the scalar counterpart of one factorized group code.
    """
    a = canonical(a)
    b = canonical(b)
    return a is b or a == b


# --------------------------------------------------------------------- #
# factorization
# --------------------------------------------------------------------- #


def factorize(values: Sequence, n: int) -> tuple[Sequence[int], list]:
    """Dense group codes for one key column: ``(codes, uniques)``.

    ``codes[j]`` is the group code of row ``j`` (``0 <= code < len(uniques)``)
    and ``uniques[code]`` is the group's key as a plain Python value (NaN
    canonicalized).  ndarray columns factorize via one ``np.unique``; every
    other sequence takes the loss-free dict walk (which is also the NULL /
    mixed-type reference semantics).  Code order follows np.unique's sorted
    order on the array path and first-appearance order on the dict path —
    callers must not rely on either.
    """
    dv = vector.dict_vector(values)
    if dv is not None:
        # Dictionary columns arrive pre-factorized: their codes are already
        # dense group codes over the *column's* dictionary, so one unique
        # over ints compacts them to batch-local codes and the uniques
        # decode through the dictionary (strings hold no NaN/NULL).
        np = vector._np
        uniq_codes, codes = np.unique(dv.codes, return_inverse=True)
        decode = dv.values
        return codes, [decode[c] for c in uniq_codes.tolist()]
    if is_ndarray(values) and values.dtype.kind in "biufU":
        np = vector._np
        uniques_arr, codes = np.unique(values, return_inverse=True)
        first_nan = _nan_tail(uniques_arr)
        if first_nan >= 0:
            if first_nan < len(uniques_arr) - 1:
                codes = np.minimum(codes, first_nan)
            return codes, uniques_arr[:first_nan].tolist() + [NAN]
        return codes, uniques_arr.tolist()
    code_of: dict = {}
    codes_l: list[int] = []
    uniques_list: list = []
    append = codes_l.append
    for v in values:
        if v != v:
            v = NAN
        code = code_of.get(v)
        if code is None:
            code = len(uniques_list)
            code_of[v] = code
            uniques_list.append(v)
        append(code)
    return codes_l, uniques_list


def _nan_tail(uniques) -> int:
    """Index of the first NaN in an ``np.unique`` output array, or -1.

    NaNs sort to the end of np.unique's output.  Newer numpy already
    collapses them to a single entry; older releases keep one per
    occurrence — callers fold everything from this index on into one
    canonical NaN group, version-independently.
    """
    if uniques.dtype.kind == "f" and len(uniques) and uniques[-1] != uniques[-1]:
        return int(vector._np.isnan(uniques).argmax())
    return -1


def _collapse_nan_counts(uniq, counts):
    """Apply the NaN-collapse rule to a ``(uniques, counts)`` pair:
    ``(nan_free_uniques, counts, first_nan_index_or_-1)`` with all NaN
    tallies folded into one trailing count."""
    first_nan = _nan_tail(uniq)
    if first_nan < 0:
        return uniq, counts, -1
    np = vector._np
    counts = np.concatenate((counts[:first_nan], [counts[first_nan:].sum()]))
    return uniq[:first_nan], counts, first_nan


def _unique_counts_canonical(column) -> tuple[list, Sequence[int]]:
    """``np.unique(..., return_counts=True)`` with the NaN-collapse rule:
    ``(keys, counts)`` where keys are plain Python values, all NaNs folded
    into one trailing canonical :data:`NAN` entry."""
    uniq, counts = vector._np.unique(column, return_counts=True)
    uniq, counts, first_nan = _collapse_nan_counts(uniq, counts)
    keys = uniq.tolist()
    if first_nan >= 0:
        keys.append(NAN)
    return keys, counts


def combine_codes(
    factorized: list[tuple[Sequence[int], list]], n: int
):
    """Fold per-column codes into one dense code column plus decoded keys.

    Returns ``(codes, keys)`` where ``codes`` is an intp ndarray of
    batch-local group ids and ``keys[g]`` is group ``g``'s key — the bare
    unique value for a single key column, a tuple for several.  Returns
    None when the mixed-radix space would overflow exact int64 (the caller
    then walks the batch per row).  Requires numpy.
    """
    np = vector._np
    if len(factorized) == 1:
        codes, uniques = factorized[0]
        if not isinstance(codes, np.ndarray):
            codes = np.asarray(codes, dtype=np.intp)
        return codes, uniques
    radix = 1
    for _, uniques in factorized:
        radix *= len(uniques)
        if radix > _MAX_RADIX:
            return None
    combined = None
    for codes, uniques in factorized:
        if not isinstance(codes, np.ndarray):
            codes = np.asarray(codes, dtype=np.int64)
        else:
            codes = codes.astype(np.int64, copy=False)
        combined = codes if combined is None else combined * len(uniques) + codes
    uniq, codes_out = np.unique(combined, return_inverse=True)
    # Decode each combined code back to its per-column unique values.
    key_parts: list[list] = []
    rem = uniq
    for _, uniques in reversed(factorized):
        card = len(uniques)
        idx = rem % card
        rem = rem // card
        key_parts.append([uniques[i] for i in idx.tolist()])
    key_parts.reverse()
    return codes_out, list(zip(*key_parts))


# --------------------------------------------------------------------- #
# accumulators (row-path cells; also the merge cells of the batch engine)
# --------------------------------------------------------------------- #


def make_accumulator(func: str):
    """``(initial_cell, update, final)`` for one aggregate function.

    Cells are O(1) running state — count / (count, sum) / best-so-far — so
    aggregation buffers scale with the number of groups, not input rows.
    NULLs are skipped; an aggregate over no non-NULL input is NULL
    (COUNT: 0).  MIN/MAX order NaN above every non-NaN value (the Postgres
    rule), which keeps the per-row path batch-order-independent and equal
    to the segment reductions.
    """
    if func == "COUNT":
        return (
            0,
            lambda cell, v: cell + 1 if v is not None else cell,
            lambda cell: cell,
        )
    if func in ("SUM", "AVG"):
        def update(cell, v):
            return cell if v is None else (cell[0] + 1, cell[1] + v)

        if func == "SUM":
            final = lambda cell: cell[1] if cell[0] else None  # noqa: E731
        else:
            final = lambda cell: cell[1] / cell[0] if cell[0] else None  # noqa: E731
        return (0, 0), update, final
    if func == "MIN":
        def update(cell, v):
            if v is None or cell is MISSING:
                return cell if v is None else v
            if cell != cell:  # NaN is the greatest: anything displaces it
                return v
            if v != v:  # ... and never displaces a non-NaN minimum
                return cell
            return v if v < cell else cell

        return MISSING, update, lambda cell: None if cell is MISSING else cell
    if func == "MAX":
        def update(cell, v):
            if v is None or cell is MISSING:
                return cell if v is None else v
            if v != v:  # NaN is the greatest: it wins any MAX
                return v
            if cell != cell:
                return cell
            return v if v > cell else cell

        return MISSING, update, lambda cell: None if cell is MISSING else cell
    raise PlanError(f"unknown aggregate function {func!r}")


def _merge_fn(func: str, update) -> Callable[[Any, Any], Any]:
    """Merge two cells of ``func`` (associative; both sides may be partial)."""
    if func == "COUNT":
        return lambda a, b: a + b
    if func in ("SUM", "AVG"):
        return lambda a, b: (a[0] + b[0], a[1] + b[1])

    # MIN/MAX: a partial cell is either MISSING or a plain value, and the
    # per-row update rule is exactly the pairwise merge rule.
    def merge(a, b):
        if b is MISSING:
            return a
        return update(a, b)

    return merge


# --------------------------------------------------------------------- #
# segment reductions
# --------------------------------------------------------------------- #

#: ndarray dtype kinds the ufunc reductions handle; everything else (e.g.
#: '<U' strings under MIN/MAX) reduces through the skip-NULL loop.
_REDUCIBLE_KINDS = "biuf"

#: ``np.add.reduceat`` over int64 wraps silently on overflow, while the
#: row path's Python ints are exact.  Sums whose accumulated magnitude
#: could reach this bound leave the vectorized path instead.
_INT_SUM_BOUND = 1 << 62


def _int_sum_peak(values) -> int:
    """Largest absolute value of an int-kind ndarray, as an exact Python
    int (``np.abs`` itself wraps on the int64 minimum)."""
    if not len(values):
        return 0
    return max(int(values.max()), -int(values.min()))


def _segment_reduce_array(func: str, values, order, starts, counts_list):
    """Per-group cells for one ndarray argument column (no NULLs possible).

    Returns None when the reduction cannot run exactly (int sums that
    could overflow int64); the caller then uses the Python-int loop.
    """
    np = vector._np
    if func == "COUNT":
        return counts_list
    if (
        func in ("SUM", "AVG")
        and values.dtype.kind in "iu"
        and _int_sum_peak(values) * len(values) >= _INT_SUM_BOUND
    ):
        return None
    sorted_values = values[order]
    if func in ("SUM", "AVG"):
        totals = np.add.reduceat(sorted_values, starts).tolist()
        return list(zip(counts_list, totals))
    if func == "MIN":
        # fmin skips NaN, so a group's MIN is NaN only when it is all-NaN.
        return np.fmin.reduceat(sorted_values, starts).tolist()
    # MAX: maximum propagates NaN — any NaN in the group wins.
    return np.maximum.reduceat(sorted_values, starts).tolist()


def _segment_reduce_seq(func: str, values, codes_list, num_groups: int):
    """Per-group cells for a generic argument column (NULLs skipped)."""
    initial, update, _ = make_accumulator(func)
    cells = [initial] * num_groups
    for code, v in zip(codes_list, values):
        if v is not None:
            cells[code] = update(cells[code], v)
    return cells


# --------------------------------------------------------------------- #
# typed single-key global state
# --------------------------------------------------------------------- #


class _SingleKeyArrayGroups:
    """Fully-typed grouping state for one ndarray key column.

    For single-key grouping whose key and argument columns are all
    ndarrays, the *global* state — not just the per-batch reduction — stays
    in the array domain: known keys live in a sorted ndarray, batch keys
    map to group ids via one ``np.searchsorted``, and per-group cells merge
    by fancy-indexed arithmetic.  No Python-level work per distinct key,
    which is what makes high-cardinality grouping (cardinality ~ rows)
    faster than the per-row dict walk rather than merely equal to it.

    NaN keys cannot live in the sorted search array (``NaN != NaN`` breaks
    the membership test), so the single NaN group — np.unique sorts NaNs
    last, and :func:`factorize`'s collapse rule applies here too — is
    tracked as a sidecar gid.  ``keys`` holds one canonical Python key per
    gid, in creation order.
    """

    __slots__ = (
        "funcs",
        "keys",
        "decode",
        "_count_only",
        "_sorted",
        "_sgids",
        "_nan_gid",
        "_cells",
        "_sum_bounds",
    )

    def __init__(self, funcs: Sequence[str]):
        self.funcs = list(funcs)
        self._count_only = all(f == "COUNT" for f in funcs)
        self.keys: list = []
        #: Dictionary of a dict-encoded key column (code -> value).  The
        #: sorted state then holds raw codes — already dense group ids over
        #: the column's dictionary, stable across batches because the
        #: dictionary is append-only and shared by every batch view — and
        #: only newly-seen distinct keys ever decode (into ``keys``).
        self.decode: list | None = None
        self._sorted = None
        self._sgids = None
        self._nan_gid = -1
        self._cells: list | None = None
        #: Per-aggregate accumulated |sum| ceiling for int arguments: the
        #: typed totals live in int64 arrays, so once the worst case could
        #: reach _INT_SUM_BOUND the state demotes (exactly, via tolist) to
        #: the dict engine's Python-int cells instead of wrapping.
        self._sum_bounds: dict[int, int] = {}

    @staticmethod
    def eligible(key_col, arg_cols: list) -> bool:
        """Whether a batch's columns fit the typed state: ndarray key of a
        sortable kind (or a dictionary vector, whose codes are), and every
        argument ndarray-reducible (or COUNT(*))."""
        if vector.dict_vector(key_col) is None and not (
            is_ndarray(key_col) and key_col.dtype.kind in "biufU"
        ):
            return False
        return all(
            values is None
            or (is_ndarray(values) and values.dtype.kind in _REDUCIBLE_KINDS)
            for values in arg_cols
        )

    def _key_codes(self, key_col):
        """The batch key as the ndarray the sorted state orders on:
        dictionary codes for a dict-encoded key (its dictionary pinned on
        first sight), the ndarray itself otherwise; None when ineligible."""
        dv = vector.dict_vector(key_col)
        if dv is not None:
            if self.decode is None:
                self.decode = dv.values
            elif self.decode is not dv.values:
                return None
            return dv.codes
        if self.decode is not None or not (
            is_ndarray(key_col) and key_col.dtype.kind in "biufU"
        ):
            return None
        return key_col

    def consume(self, key_col, arg_cols: list, n: int) -> bool:
        """Fold one batch in; False when the batch's shapes are ineligible
        (the caller then demotes this state to the dict engine)."""
        key_col = self._key_codes(key_col)
        if key_col is None or not all(
            values is None
            or (is_ndarray(values) and values.dtype.kind in _REDUCIBLE_KINDS)
            for values in arg_cols
        ):
            return False
        new_bounds: dict[int, int] = {}
        for i, (func, values) in enumerate(zip(self.funcs, arg_cols)):
            if (
                values is not None
                and func in ("SUM", "AVG")
                and values.dtype.kind in "iu"
            ):
                ceiling = self._sum_bounds.get(i, 0) + _int_sum_peak(values) * n
                if ceiling >= _INT_SUM_BOUND:
                    return False
                new_bounds[i] = ceiling
        self._sum_bounds.update(new_bounds)
        np = vector._np
        count_only = self._count_only
        if count_only and self._sorted is not None and self._merge_known(key_col):
            return True
        if count_only:
            # COUNT-style aggregates need no row->group codes at all (an
            # ndarray argument is NULL-free, so COUNT(x) is the group
            # size): one sort-and-count per batch, as the retired COUNT(*)
            # special case did — now for any number of COUNTs.
            uniq, counts = np.unique(key_col, return_counts=True)
            uniq, counts, nan_local = _collapse_nan_counts(uniq, counts)
        else:
            uniq, codes = np.unique(key_col, return_inverse=True)
            nan_local = _nan_tail(uniq)
            if nan_local >= 0:
                if nan_local < len(uniq) - 1:
                    codes = np.minimum(codes, nan_local)
                uniq = uniq[:nan_local]
        num_local = len(uniq) + (1 if nan_local >= 0 else 0)
        if not count_only:
            counts = np.bincount(codes, minlength=num_local)
        order = starts = None
        partials: list = []
        for func, values in zip(self.funcs, arg_cols):
            if values is None or func == "COUNT":
                partials.append(("count", counts))
                continue
            if order is None:
                order = np.argsort(codes, kind="stable")
                starts = np.concatenate(([0], np.cumsum(counts[:-1])))
            sorted_values = values[order]
            if func in ("SUM", "AVG"):
                partials.append(
                    ("sum", counts, np.add.reduceat(sorted_values, starts))
                )
            elif func == "MIN":
                partials.append(("min", np.fmin.reduceat(sorted_values, starts)))
            else:
                partials.append(("max", np.maximum.reduceat(sorted_values, starts)))
        self._merge(uniq, nan_local, num_local, partials)
        return True

    def _merge_known(self, key_col) -> bool:
        """COUNT-only steady-state merge: probe every row against the known
        sorted keys and bincount the hit gids — no per-batch np.unique sort
        at all.  False (nothing merged) when any row's key is new, or NaN
        appears (``NaN == NaN`` fails the hit test); the unique-based slow
        path then handles the batch.
        """
        np = vector._np
        sorted_keys = self._sorted
        if sorted_keys.dtype != key_col.dtype:
            return False
        pos = np.searchsorted(sorted_keys, key_col)
        np.minimum(pos, len(sorted_keys) - 1, out=pos)
        if not (sorted_keys[pos] == key_col).all():
            return False
        tallies = np.bincount(self._sgids[pos], minlength=len(self.keys))
        assert self._cells is not None
        for cell in self._cells:
            counts = cell[1]
            counts += tallies
        return True

    def _merge(self, uniq, nan_local: int, num_local: int, partials: list) -> None:
        np = vector._np
        previous = len(self.keys)
        gids = np.empty(num_local, dtype=np.intp)
        if len(uniq):
            if self._sorted is None:
                known = np.zeros(len(uniq), dtype=bool)
            else:
                if self._sorted.dtype != uniq.dtype:
                    common = np.result_type(self._sorted, uniq)
                    self._sorted = self._sorted.astype(common)
                    uniq = uniq.astype(common)
                pos = np.searchsorted(self._sorted, uniq)
                clipped = np.minimum(pos, len(self._sorted) - 1)
                known = (self._sorted[clipped] == uniq) & (pos < len(self._sorted))
                if known.any():
                    gids[: len(uniq)][known] = self._sgids[clipped[known]]
            fresh = ~known
            if fresh.any():
                new_keys = uniq[fresh]
                new_gids = np.arange(
                    previous, previous + len(new_keys), dtype=np.intp
                )
                gids[: len(uniq)][fresh] = new_gids
                if self.decode is None:
                    self.keys.extend(new_keys.tolist())
                else:
                    decode = self.decode
                    self.keys.extend(decode[c] for c in new_keys.tolist())
                if self._sorted is None:
                    self._sorted = new_keys.copy()
                    self._sgids = new_gids
                else:
                    at = np.searchsorted(self._sorted, new_keys)
                    self._sorted = np.insert(self._sorted, at, new_keys)
                    self._sgids = np.insert(self._sgids, at, new_gids)
        new_locals = np.flatnonzero(gids[: len(uniq)] >= previous)
        if nan_local >= 0:
            if self._nan_gid < 0:
                self._nan_gid = len(self.keys)
                self.keys.append(NAN)
                new_locals = np.concatenate((new_locals, [num_local - 1]))
            gids[num_local - 1] = self._nan_gid
        exist_locals = np.flatnonzero(gids < previous)
        exist_gids = gids[exist_locals]
        if self._cells is None:
            self._cells = [self._appended(None, p, new_locals) for p in partials]
            return
        for i, partial in enumerate(partials):
            cell = self._appended(self._cells[i], partial, new_locals)
            if len(exist_locals):
                cell = self._scattered(cell, partial, exist_locals, exist_gids)
            self._cells[i] = cell

    @staticmethod
    def _appended(cell, partial, new_locals):
        """Cell arrays extended with the new groups' partial values (the
        partials themselves, so no identity-element corner cases)."""
        np = vector._np
        kind = partial[0]
        if kind == "sum":
            _, counts, totals = partial
            if cell is None:
                return ("sum", counts[new_locals].copy(), totals[new_locals].copy())
            _, gcounts, gtotals = cell
            return (
                "sum",
                np.concatenate((gcounts, counts[new_locals])),
                np.concatenate(
                    (
                        gtotals.astype(np.result_type(gtotals, totals), copy=False),
                        totals[new_locals],
                    )
                ),
            )
        arr = partial[1]
        if cell is None:
            return (kind, arr[new_locals].copy())
        garr = cell[1].astype(np.result_type(cell[1], arr), copy=False)
        return (kind, np.concatenate((garr, arr[new_locals])))

    @staticmethod
    def _scattered(cell, partial, locals_, gids):
        """Merge existing groups' partials by fancy-indexed arithmetic.
        Group ids are unique within a batch, so in-place index ops are safe."""
        np = vector._np
        kind = cell[0]
        if kind == "count":
            cell[1][gids] += partial[1][locals_]
            return cell
        if kind == "sum":
            _, gcounts, gtotals = cell
            _, counts, totals = partial
            gcounts[gids] += counts[locals_]
            gtotals = gtotals.astype(np.result_type(gtotals, totals), copy=False)
            gtotals[gids] = gtotals[gids] + totals[locals_]
            return ("sum", gcounts, gtotals)
        arr = cell[1].astype(np.result_type(cell[1], partial[1]), copy=False)
        if kind == "min":
            # fmin: NaN never displaces a real minimum (all-NaN stays NaN).
            arr[gids] = np.fmin(arr[gids], partial[1][locals_])
        else:
            # maximum: NaN propagates — any NaN in the group wins MAX.
            arr[gids] = np.maximum(arr[gids], partial[1][locals_])
        return (kind, arr)

    # -- partial-state merging ------------------------------------------ #

    def merge_state(self, other: "_SingleKeyArrayGroups") -> bool:
        """Merge another typed state in (the parallel partial-state merge).

        The other state's cells realign from creation order to sorted-key
        order through its ``_sgids`` permutation and then fold in through
        the same searchsorted/scatter machinery per-batch partials use.
        Returns False — nothing merged — when exact int sums could overflow
        the typed int64 totals; the caller then merges via Python cells.
        """
        if other._cells is None:
            return True
        if self.decode is not other.decode:
            # Sorted codes from different dictionaries do not compare;
            # parallel partials over one table share the dictionary object,
            # so a mismatch only happens on an empty self (adopt) or across
            # unrelated streams (demote and merge decoded).
            if self._cells is None and self.decode is None:
                self.decode = other.decode
            else:
                return False
        np = vector._np
        merged_bounds: dict[int, int] = dict(self._sum_bounds)
        for i, ceiling in other._sum_bounds.items():
            total = merged_bounds.get(i, 0) + ceiling
            if total >= _INT_SUM_BOUND:
                return False
            merged_bounds[i] = total
        if other._sorted is not None:
            order = other._sgids
            uniq = other._sorted
        else:
            order = np.empty(0, dtype=np.intp)
            uniq = np.empty(0, dtype=np.intp)
        num_local = len(uniq)
        nan_local = -1
        if other._nan_gid >= 0:
            order = np.concatenate(
                (order, np.asarray([other._nan_gid], dtype=np.intp))
            )
            num_local += 1
            nan_local = num_local - 1
        partials: list = []
        for kind, *arrays in other._cells:
            if kind == "sum":
                counts, totals = arrays
                partials.append(("sum", counts[order], totals[order]))
            else:
                partials.append((kind, arrays[0][order]))
        self._sum_bounds = merged_bounds
        self._merge(uniq, nan_local, num_local, partials)
        return True

    # -- output / demotion ---------------------------------------------- #

    def cell_lists(self) -> list[list]:
        """Cells as the dict engine's Python representation (per aggregate)."""
        if self._cells is None:
            return [[] for _ in self.funcs]
        out: list[list] = []
        for kind, *arrays in self._cells:
            if kind == "count":
                out.append(arrays[0].tolist())
            elif kind == "sum":
                out.append(list(zip(arrays[0].tolist(), arrays[1].tolist())))
            else:
                out.append(arrays[0].tolist())
        return out

    def result_columns(self) -> list[list]:
        columns: list[list] = [list(self.keys)]
        if self._cells is None:
            return columns + [[] for _ in self.funcs]
        for (kind, *arrays), func in zip(self._cells, self.funcs):
            if kind == "count":
                columns.append(arrays[0].tolist())
            elif kind == "sum":
                if func == "AVG":
                    columns.append((arrays[1] / arrays[0]).tolist())
                else:
                    # Groups only exist for rows seen, and ndarray argument
                    # columns carry no NULLs — counts are always positive.
                    columns.append(arrays[1].tolist())
            else:
                columns.append(arrays[0].tolist())
        return columns


# --------------------------------------------------------------------- #
# streaming grouped aggregation
# --------------------------------------------------------------------- #


class GroupedAggregation:
    """Streaming multi-key grouped aggregation over columnar batches.

    Feed dense per-batch key/argument columns via :meth:`consume`; read the
    grouped output column-major via :meth:`result_columns` once the input
    is drained.  State per group is one key entry plus one O(1) cell per
    aggregate, so :attr:`num_groups` is exactly what a memory budget should
    charge.

    Args:
        num_keys: number of grouping key columns.
        funcs: one aggregate function name per output aggregate.
    """

    #: First-batch distinct count from which the typed array state takes
    #: over: below it, per-batch merges touch so few groups that the dict
    #: engine's Python work is cheaper than the array state's fixed-cost
    #: vectorized bookkeeping.
    _ARRAY_MODE_MIN_GROUPS = 128

    def __init__(self, num_keys: int, funcs: Sequence[str]):
        self.num_keys = num_keys
        self.funcs = list(funcs)
        self._count_only = all(f == "COUNT" for f in funcs)
        accumulators = [make_accumulator(f) for f in funcs]
        self._initials = [init for init, _, _ in accumulators]
        self._updates = [update for _, update, _ in accumulators]
        self._finals = [final for _, _, final in accumulators]
        self._merges = [
            _merge_fn(f, update) for f, (_, update, _) in zip(funcs, accumulators)
        ]
        self._gid_of: dict = {}
        self._key_columns: list[list] = [[] for _ in range(num_keys)]
        self._cells: list[list] = [[] for _ in funcs]
        self._array: _SingleKeyArrayGroups | None = None
        self._array_refused = num_keys != 1

    @property
    def num_groups(self) -> int:
        if self._array is not None:
            return len(self._array.keys)
        return len(self._gid_of)

    def consume(self, key_cols: list, arg_cols: list, n: int) -> None:
        """Fold one batch into the grouped state.

        ``key_cols`` are the dense grouping columns (ndarray or sequence,
        each of ``n`` visible rows); ``arg_cols`` align with the configured
        aggregates (None for COUNT(*), whose argument is implicit).
        """
        if not n:
            return
        if self._array is not None:
            if self._array.consume(key_cols[0], arg_cols, n):
                return
            # Ineligible batch shapes (list column, string MIN/MAX, ...):
            # demote the typed state to the dict engine, permanently.
            self._demote_array()
        if vector.numpy_enabled() and self._consume_vectorized(
            key_cols, arg_cols, n
        ):
            return
        self._consume_rows(key_cols, arg_cols, n)

    def _maybe_promote(
        self, key_col, arg_cols: list, observed_groups: int, n: int
    ) -> bool:
        """Switch an empty state to the typed array engine when the first
        batch reveals high cardinality; consumes the batch on success."""
        if (
            self._array_refused
            or self._gid_of
            or observed_groups < self._ARRAY_MODE_MIN_GROUPS
            or not _SingleKeyArrayGroups.eligible(key_col, arg_cols)
        ):
            return False
        self._array = _SingleKeyArrayGroups(self.funcs)
        return self._array.consume(key_col, arg_cols, n)

    def _demote_array(self) -> None:
        array = self._array
        assert array is not None
        self._array = None
        self._array_refused = True
        self._gid_of = {key: gid for gid, key in enumerate(array.keys)}
        self._key_columns = [list(array.keys)]
        self._cells = array.cell_lists()

    # -- vectorized batch path ---------------------------------------- #

    def _consume_vectorized(self, key_cols: list, arg_cols: list, n: int) -> bool:
        np = vector._np
        if (
            self._count_only
            and self.num_keys == 1
            # COUNT(x) equals the group size only when x cannot hold NULLs
            # — i.e. it is an ndarray (or the implicit COUNT(*) argument).
            # A list argument may carry Nones and must count per row.
            and all(
                v is None or (is_ndarray(v) and v.dtype.kind != "O")
                for v in arg_cols
            )
        ):
            # COUNT-style aggregates over one typed key need no row->group
            # codes: one sort-and-count per batch, then a merge over the
            # batch's (few) distinct keys — the general form of the retired
            # COUNT(*) special case.  Dictionary keys count over their int
            # codes and decode only the batch-distinct survivors.
            key0 = key_cols[0]
            dv = vector.dict_vector(key0)
            if dv is not None:
                uniq, counts = np.unique(dv.codes, return_counts=True)
                decode = dv.values
                keys = [decode[c] for c in uniq.tolist()]
            elif is_ndarray(key0) and key0.dtype.kind in "biufU":
                keys, counts = _unique_counts_canonical(key0)
            else:
                keys = counts = None
            if keys is not None:
                if self._maybe_promote(key0, arg_cols, len(keys), n):
                    return True
                counts_list = counts.tolist()
                self._merge(keys, [counts_list] * len(self.funcs))
                return True
        if self.num_keys:
            factorized = [factorize(c, n) for c in key_cols]
            if self.num_keys == 1 and self._maybe_promote(
                key_cols[0], arg_cols, len(factorized[0][1]), n
            ):
                return True
            combined = combine_codes(factorized, n)
            if combined is None:  # mixed-radix overflow: rare, walk the rows
                return False
            codes, keys = combined
            num_groups = len(keys)
        else:
            codes = np.zeros(n, dtype=np.intp)
            keys = [()]
            num_groups = 1
        counts = np.bincount(codes, minlength=num_groups)
        counts_list = counts.tolist()
        order = starts = codes_list = None
        partials: list = []
        for func, values in zip(self.funcs, arg_cols):
            if values is None:  # COUNT(*)
                partials.append(counts_list)
                continue
            partial = None
            if is_ndarray(values) and values.dtype.kind in _REDUCIBLE_KINDS:
                if order is None:
                    order = np.argsort(codes, kind="stable")
                    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
                partial = _segment_reduce_array(
                    func, values, order, starts, counts_list
                )
            if partial is None:  # list column, or an overflow-prone int sum
                if codes_list is None:
                    codes_list = (
                        codes.tolist() if isinstance(codes, np.ndarray) else codes
                    )
                # as_values: ndarray inputs must reduce over plain Python
                # values here (exact big-int sums, no numpy scalars in cells).
                partial = _segment_reduce_seq(
                    func, vector.as_values(values), codes_list, num_groups
                )
            partials.append(partial)
        self._merge(keys, partials)
        return True

    def _merge(self, keys: list, partials: list) -> None:
        """Fold one batch's per-group partial cells into the global state."""
        gid_of = self._gid_of
        get = gid_of.get
        key_columns = self._key_columns
        cells = self._cells
        merges = self._merges
        single = self.num_keys == 1
        for g, key in enumerate(keys):
            gid = get(key)
            if gid is None:
                gid = len(gid_of)
                gid_of[key] = gid
                if single:
                    key_columns[0].append(key)
                else:
                    for i, v in enumerate(key):
                        key_columns[i].append(v)
                for i, partial in enumerate(partials):
                    cells[i].append(partial[g])
            else:
                for i, partial in enumerate(partials):
                    cells[i][gid] = merges[i](cells[i][gid], partial[g])

    # -- partial-state merging (morsel-driven parallel aggregation) ----- #

    def merge_from(self, other: "GroupedAggregation") -> None:
        """Fold another (partial) aggregation state into this one.

        The other state's per-group cells are exactly the partial cells
        :meth:`_merge` consumes (the merge functions are associative), so a
        stream split into per-worker partials and merged in morsel order
        produces the same groups and aggregates as serial consumption.
        Typed array partials stay typed: the first one is adopted
        wholesale and later ones fold in through the scatter-merge
        machinery (:meth:`_SingleKeyArrayGroups.merge_state`), so merging
        high-cardinality partials does no Python-per-key work.  ``other``
        is consumed (possibly demoted in place to read its cells); it must
        not receive further batches.
        """
        if other._array is not None:
            if (
                self._array is None
                and not self._gid_of
                and not self._array_refused
            ):
                # First typed partial into an empty state: adopt it.
                self._array = other._array
                other._array = None
                return
            if self._array is not None and self._array.merge_state(other._array):
                return
            other._demote_array()
        if not other._gid_of:
            return
        if self._array is not None:
            self._demote_array()
        self._merge(list(other._gid_of), other._cells)

    # -- spill support (out-of-core aggregation) ------------------------ #

    def export_and_reset(self) -> tuple[list, list]:
        """Move the whole state out as ``(keys, cells)`` partial frames.

        The return shape is exactly what :meth:`_merge` (and therefore
        :meth:`absorb`) consumes: group keys in gid order (bare values for
        single-key states, tuples otherwise) plus one partial-cell list
        per aggregate.  The engine resets to empty — the out-of-core
        aggregation spills these frames per hash partition and re-absorbs
        them partition by partition on drain.
        """
        if self._array is not None:
            self._demote_array()
        keys = list(self._gid_of)
        cells = self._cells
        self._gid_of = {}
        self._key_columns = [[] for _ in range(self.num_keys)]
        self._cells = [[] for _ in self.funcs]
        self._array = None
        self._array_refused = self.num_keys != 1
        return keys, cells

    def absorb(self, keys: list, cells: list) -> None:
        """Fold exported ``(keys, cells)`` partials back in.

        Keys are re-canonicalized: a NaN key that round-tripped through a
        spill file is a *different* float object, and NaN-key stability
        rests on the canonical :data:`NAN` identity.
        """
        if not keys:
            return
        if self._array is not None:
            self._demote_array()
        if self.num_keys == 1:
            keys = [canonical(k) for k in keys]
        elif self.num_keys:
            keys = [canonical_row(k) for k in keys]
        self._merge(keys, cells)

    # -- per-row reference path ---------------------------------------- #

    def _consume_rows(self, key_cols: list, arg_cols: list, n: int) -> None:
        gid_of = self._gid_of
        get = gid_of.get
        key_columns = self._key_columns
        cells = self._cells
        updates = self._updates
        initials = self._initials
        num_keys = self.num_keys
        key_cols = [canonical_column(c) for c in key_cols]
        single = key_cols[0] if num_keys == 1 else None
        for j in range(n):
            if single is not None:
                key = single[j]
            elif num_keys:
                key = tuple(c[j] for c in key_cols)
            else:
                key = ()
            gid = get(key)
            if gid is None:
                gid = len(gid_of)
                gid_of[key] = gid
                if single is not None:
                    key_columns[0].append(key)
                else:
                    for i, v in enumerate(key):
                        key_columns[i].append(v)
                for i, init in enumerate(initials):
                    cells[i].append(init)
            for i, values in enumerate(arg_cols):
                v = 1 if values is None else values[j]
                if v is not None:
                    cells[i][gid] = updates[i](cells[i][gid], v)

    # -- output --------------------------------------------------------- #

    def ensure_group(self) -> None:
        """Materialize the single global group of a no-key aggregation over
        empty input (``SELECT COUNT(*) FROM empty`` is one row, not zero)."""
        if self.num_keys == 0 and not self._gid_of:
            self._gid_of[()] = 0
            for i, init in enumerate(self._initials):
                self._cells[i].append(init)

    def result_columns(self) -> list[list]:
        """The grouped output, column-major: key columns then one finalized
        column per aggregate.  Never transposes through row tuples."""
        if self._array is not None:
            return self._array.result_columns()
        out: list[list] = list(self._key_columns)
        for final, cells in zip(self._finals, self._cells):
            out.append([final(cell) for cell in cells])
        return out


# --------------------------------------------------------------------- #
# streaming distinct
# --------------------------------------------------------------------- #

#: Cumulative batch-local distinct ratio above which StreamingDistinct
#: stops factorizing (near-unique data: decoding ~n keys per batch costs
#: more than walking the n rows), and the row count before the ratio is
#: trusted.
_DISTINCT_FALLBACK_RATIO = 0.5
_DISTINCT_FALLBACK_MIN_ROWS = 2048


class StreamingDistinct:
    """Streaming DISTINCT over columnar batches with canonical NaN keys.

    :meth:`positions` returns, per batch, the visible-row positions (in
    arrival order) whose full row key was never seen before — the batch's
    survivors.  The vectorized path factorizes every column and dedups on
    combined group codes, touching Python once per batch-distinct key; the
    fallback walks row tuples.  Both feed one seen-set of canonicalized
    keys, so survivors are identical batch-split-independently.

    Factorization only pays off when batches actually repeat keys — on
    near-unique data (distinct ratio ~1) decoding every batch-distinct key
    costs more than the row walk it replaces.  A single key column of
    sortable typed values (ints/strings, or dictionary codes) therefore
    keeps its seen-state *typed* instead, mirroring
    :class:`_SingleKeyArrayGroups`: known keys live in one sorted ndarray
    and each batch resolves via ``np.unique`` + ``searchsorted`` with no
    per-key Python work at any distinct ratio.  Multi-column (or
    non-sortable) keys keep the factorize-then-dedup path with its
    cumulative-ratio fallback to the row walk
    (:data:`_DISTINCT_FALLBACK_RATIO`); every path feeds or demotes into
    one canonical seen-set, so survivors are path-independent.
    """

    def __init__(self) -> None:
        self._seen: set = set()
        self._rows = 0
        self._batch_distinct = 0
        self._vectorize = True
        #: Typed single-column state: sorted ndarray of seen raw keys
        #: (dictionary codes when ``_typed_decode`` is set), engaged while
        #: ``_typed_ok`` and demoted into ``_seen`` the first time a batch
        #: does not fit.
        self._typed_seen = None
        self._typed_decode: list | None = None
        self._typed_mode: str | None = None
        self._typed_ok = True

    @property
    def seen_count(self) -> int:
        count = len(self._seen)
        if self._typed_seen is not None:
            count += len(self._typed_seen)
        return count

    def export_keys(self) -> list[tuple]:
        """Move every seen key out as canonical tuples; reset to empty.

        The out-of-core DISTINCT spills these per hash partition at
        switchover, so drain-time replay knows which keys were already
        emitted in the streaming phase.
        """
        self._demote_typed()
        keys = list(self._seen)
        self._seen = set()
        self._typed_ok = True
        self._typed_mode = None
        self._rows = 0
        self._batch_distinct = 0
        self._vectorize = True
        return keys

    def positions(self, columns: list, n: int) -> list[int]:
        if not n:
            return []
        if vector.numpy_enabled():
            if self._typed_ok and len(columns) == 1 and not self._seen:
                kept = self._positions_typed(columns[0])
                if kept is not None:
                    return kept
                self._demote_typed()
            elif self._typed_seen is not None:
                self._demote_typed()
            if self._vectorize and columns:
                kept = self._positions_vectorized(columns, n)
                if kept is not None:
                    return kept
        elif self._typed_seen is not None:
            self._demote_typed()
        return self._positions_rows(columns, n)

    def _positions_typed(self, column):
        """Sorted-ndarray seen state for one typed key column; None when
        the batch does not fit (the caller then demotes the state).

        Floats are excluded: NaN cannot live in a sorted membership array
        (``NaN != NaN``), and the canonicalizing paths already handle it.
        """
        np = vector._np
        dv = vector.dict_vector(column)
        if dv is not None:
            if self._typed_mode is None:
                self._typed_mode = "dict"
                self._typed_decode = dv.values
            elif self._typed_mode != "dict" or self._typed_decode is not dv.values:
                return None
            raw = dv.codes
        else:
            if not (is_ndarray(column) and column.dtype.kind in "biuU"):
                return None
            if self._typed_mode is None:
                self._typed_mode = "raw"
            elif self._typed_mode != "raw":
                return None
            raw = column
        uniq, first_idx = np.unique(raw, return_index=True)
        seen = self._typed_seen
        if seen is None:
            self._typed_seen = uniq
            return np.sort(first_idx).tolist()
        if seen.dtype != uniq.dtype:
            common = np.result_type(seen, uniq)
            seen = self._typed_seen = seen.astype(common)
            uniq = uniq.astype(common)
        pos = np.searchsorted(seen, uniq)
        clipped = np.minimum(pos, len(seen) - 1)
        fresh = (seen[clipped] != uniq) | (pos >= len(seen))
        if not fresh.any():
            return []
        self._typed_seen = np.insert(seen, pos[fresh], uniq[fresh])
        return np.sort(first_idx[fresh]).tolist()

    def _demote_typed(self) -> None:
        """Fold the typed sorted-seen state into the generic seen-set (key
        formats match: single-column keys are 1-tuples), permanently."""
        self._typed_ok = False
        seen = self._typed_seen
        if seen is None:
            return
        self._typed_seen = None
        if self._typed_decode is not None:
            decode = self._typed_decode
            self._seen.update((decode[c],) for c in seen.tolist())
            self._typed_decode = None
        else:
            self._seen.update((v,) for v in seen.tolist())

    def _positions_vectorized(self, columns: list, n: int):
        np = vector._np
        combined = combine_codes([factorize(c, n) for c in columns], n)
        if combined is None:
            return None
        codes, keys = combined
        _, first_positions = np.unique(codes, return_index=True)
        self._rows += n
        self._batch_distinct += len(keys)
        if (
            self._rows >= _DISTINCT_FALLBACK_MIN_ROWS
            and self._batch_distinct > self._rows * _DISTINCT_FALLBACK_RATIO
        ):
            self._vectorize = False
        seen = self._seen
        add = seen.add
        kept: list[int] = []
        if len(columns) == 1:
            keys = [(k,) for k in keys]
        for key, pos in zip(keys, first_positions.tolist()):
            if key not in seen:
                add(key)
                kept.append(pos)
        kept.sort()
        return kept

    def _positions_rows(self, columns: list, n: int) -> list[int]:
        seen = self._seen
        add = seen.add
        kept: list[int] = []
        if not columns:
            if () not in seen:
                add(())
                kept.append(0)
            return kept
        # Column-wise canonicalization (O(#NaN) patches per batch) keeps
        # the hot dedup loop free of per-row canonicalization calls: the
        # zipped tuples are already canonical keys.
        rows: Iterable[tuple] = zip(*(canonical_column(c) for c in columns))
        return [
            j for j, row in enumerate(rows) if not (row in seen or add(row))
        ]


__all__ = [
    "NAN",
    "MISSING",
    "canonical",
    "canonical_row",
    "canonical_column",
    "sequence_has_nan",
    "bindings_equal",
    "factorize",
    "combine_codes",
    "make_accumulator",
    "GroupedAggregation",
    "StreamingDistinct",
]
