"""Execution context: memory budget, counters, and the plan runner.

The context is threaded through every physical operator.  Its single most
important job for the reproduction is the **memory budget**: the paper's
evaluation reports OOM entries (RelGoNoEI on the 4-clique QC3; Kùzu on
IC3-1), and we reproduce those by capping the number of rows any single
*genuinely buffered* intermediate may hold — hash-join build tables, sort
and aggregation buffers, distinct sets, materialization barriers, and the
final result.  Streaming pipeline segments (scan → filter → project →
probe chains) never buffer more than one batch in flight, so they no longer
trip the budget; operators that must buffer acquire a :class:`Buffer`
handle via :meth:`ExecutionContext.buffer` and grow it as rows accumulate.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import OutOfMemoryError, QueryCancelled, QueryTimeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.faults import FaultInjector
    from repro.exec.governor import MemoryGovernor
    from repro.exec.operator import Operator
    from repro.exec.spill import SpillManager

#: Target number of rows per batch flowing between operators.
DEFAULT_BATCH_SIZE = 1024

#: Floor for adaptively shrunk expansion chunks.
MIN_BATCH_SIZE = 64


class QueryHandle:
    """Cooperative cancellation token + optional deadline for one query.

    The handle is checked at batch boundaries (``ctx.emit``,
    :meth:`Buffer.grow`, the exchange's put/get loops), never mid-kernel:
    cancellation therefore unwinds through the normal generator machinery —
    operator ``finally`` blocks run, buffers release, worker threads exit —
    rather than killing threads.  A context without a handle pays a single
    ``is None`` test per boundary, so the default serial hot path is
    unchanged.

    Thread-safe by construction: the mutable state is two booleans flipped
    under the GIL, read by every worker.  ``cancel()`` may be called from
    any thread (or from a signal handler); every thread of the query raises
    at its next boundary.
    """

    __slots__ = ("start", "deadline_seconds", "_deadline", "_cancelled", "_timed_out", "_reason")

    def __init__(self, deadline_seconds: float | None = None):
        self.start = time.monotonic()
        self.deadline_seconds = deadline_seconds
        self._deadline = (
            None if deadline_seconds is None else self.start + deadline_seconds
        )
        self._cancelled = False
        self._timed_out = False
        self._reason = "query cancelled"

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cooperative cancellation; idempotent, any thread."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def remaining(self) -> float | None:
        """Seconds until the deadline (None when no deadline is armed)."""
        if self._deadline is None:
            return None
        return self._deadline - time.monotonic()

    def check(self) -> None:
        """Raise :class:`QueryTimeout` / :class:`QueryCancelled` if due.

        The first thread to observe an expired deadline marks the handle
        timed out *and* cancelled, so every other worker stops at its next
        boundary and raises the same error type.
        """
        if self._cancelled:
            if self._timed_out:
                raise QueryTimeout(
                    time.monotonic() - self.start, self.deadline_seconds or 0.0
                )
            raise QueryCancelled(self._reason)
        deadline = self._deadline
        if deadline is not None and time.monotonic() > deadline:
            self._timed_out = True
            self._cancelled = True
            raise QueryTimeout(
                time.monotonic() - self.start, self.deadline_seconds or 0.0
            )

    def wait(self, seconds: float, poll: float = 0.01) -> None:
        """Sleep up to ``seconds``, waking early (and raising) on
        cancellation/deadline — the interruptible sleep injected delays and
        cooperative backoff loops use, so a sleeping worker never outlives
        its query."""
        end = time.monotonic() + seconds
        while True:
            self.check()
            left = end - time.monotonic()
            if left <= 0:
                return
            time.sleep(min(poll, left))


def resolve_timeout(value: float | None) -> float | None:
    """An explicit per-query deadline in seconds, or the environment default.

    The single resolution rule of every execution entry point:
    ``value`` wins when given; otherwise ``REPRO_QUERY_TIMEOUT`` (empty =
    no deadline).  Non-positive values disable the deadline; a malformed
    env var raises rather than silently disarming the knob.
    """
    if value is not None:
        return value if value > 0 else None
    raw = os.environ.get("REPRO_QUERY_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        parsed = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_QUERY_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    return parsed if parsed > 0 else None


class Buffer:
    """Accounting handle for one operator's buffered rows.

    The budget check is per buffer — "no single materialized intermediate
    may exceed the budget" — matching the semantics the OOM reproduction
    was calibrated against.  The context additionally tracks the total and
    peak buffered rows across all live buffers for observability.

    Under a parallel context (``ctx.parallelism > 1``) all mutations go
    through the context's lock, so buffers may be grown from worker
    threads (the parallel hash-join build charges one shared buffer from
    every worker, keeping the cumulative OOM trip point byte-identical to
    serial execution); serial contexts skip the lock — the default
    single-threaded hot path pays nothing.  ``tracked=False`` buffers — the
    per-worker *partial* states of parallel aggregation / distinct / top-k
    — still enforce the per-buffer budget, but stay out of the
    ``buffered_rows`` / ``peak_buffered_rows`` aggregates: each partial is
    a subset of the merged state, which the consumer charges in full, so
    tracking both would double-count one logical intermediate.
    """

    __slots__ = ("_ctx", "label", "rows", "tracked")

    def __init__(self, ctx: "ExecutionContext", label: str, tracked: bool = True):
        self._ctx = ctx
        self.label = label
        self.rows = 0
        self.tracked = tracked

    def grow(self, rows: int) -> None:
        """Account for ``rows`` newly buffered rows; raise OOM over budget."""
        if rows <= 0:
            return
        ctx = self._ctx
        # Batch-boundary lifecycle checks (outside the accounting lock, so
        # a raising check can never leave it held): both are a single
        # ``is None`` test when the query has no deadline/handle and no
        # injector armed — the default serial hot path is unchanged.
        if ctx.handle is not None:
            ctx.handle.check()
        if ctx.faults is not None:
            ctx.faults.on_grow(ctx, self.label, rows)
        if ctx.parallelism > 1:
            with ctx.lock:
                self._grow(ctx, rows)
        else:
            self._grow(ctx, rows)

    def _grow(self, ctx: "ExecutionContext", rows: int) -> None:
        self.rows += rows
        if self.tracked:
            ctx.buffered_rows += rows
            if ctx.buffered_rows > ctx.peak_buffered_rows:
                ctx.peak_buffered_rows = ctx.buffered_rows
        budget = ctx.memory_budget_rows
        if budget is not None and self.rows > budget:
            raise OutOfMemoryError(self.rows, budget, self.label)

    def shrink(self, rows: int) -> None:
        """Account for ``rows`` buffered rows being dropped (e.g. TopK prune)."""
        if rows <= 0:
            return
        ctx = self._ctx
        if ctx.parallelism > 1:
            with ctx.lock:
                self._shrink(ctx, rows)
        else:
            self._shrink(ctx, rows)

    def _shrink(self, ctx: "ExecutionContext", rows: int) -> None:
        # Clamp under the lock: a read-then-lock clamp would let two
        # concurrent shrinks of a shared buffer both observe the same
        # rows and double-decrement the accounting.
        rows = min(rows, self.rows)
        if rows <= 0:
            return
        self.rows -= rows
        if self.tracked:
            ctx.buffered_rows -= rows

    def release(self) -> None:
        """Release the whole buffer (operator finished or was cancelled)."""
        ctx = self._ctx
        if ctx.parallelism > 1:
            with ctx.lock:
                self._release(ctx)
        else:
            self._release(ctx)

    def _release(self, ctx: "ExecutionContext") -> None:
        if self.tracked:
            ctx.buffered_rows -= self.rows
        self.rows = 0


@dataclass
class ExecutionContext:
    """Mutable per-query execution state.

    Attributes:
        memory_budget_rows: maximum rows a single buffered intermediate
            (hash table, sort buffer, materialized result) may hold;
            ``None`` means unlimited.
        rows_produced: total rows emitted by all operators (a cheap proxy
            for work done, used by tests and the benchmark reports).  With
            streaming execution, early-exiting pipelines (LIMIT / TopK)
            emit — and therefore count — strictly fewer rows.
        operator_rows: per-operator-label row counts for plan forensics.
        batch_size: target chunk size for operator output batches.
        adaptive_batch_sizing: when True (default), expansion-heavy
            operators shrink their flush threshold under observed fan-out
            via :meth:`expansion_batch_size`.
        min_batch_size: floor for adaptively shrunk chunks.
        buffered_rows / peak_buffered_rows: current and high-water total of
            rows held by live :class:`Buffer` handles.
        parallelism: degree of morsel-driven parallelism the executed plan
            may use (1 = serial, today's behavior).  Under a parallel
            context, counters and buffers are lock-protected so one
            context is shared by all workers; serial contexts skip the
            lock entirely.
        handle: the query's :class:`QueryHandle` (cancellation token +
            deadline), checked at batch boundaries; None (the default)
            costs one ``is None`` test per boundary.
        faults: an armed :class:`~repro.exec.faults.FaultInjector`, or
            None (the default — same single-test cost).
        spill: an armed :class:`~repro.exec.spill.SpillManager`, or None
            (the default).  When armed, pipeline breakers move buffered
            state past :meth:`spill_limit` to temp files instead of
            tripping :class:`OutOfMemoryError` — the budget becomes a
            working-set knob.  Disarmed execution pays one ``is None``
            test per breaker, the same contract as ``handle``/``faults``.
    """

    memory_budget_rows: int | None = None
    rows_produced: int = 0
    operator_rows: dict[str, int] = field(default_factory=dict)
    start_time: float = field(default_factory=time.perf_counter)
    batch_size: int = DEFAULT_BATCH_SIZE
    adaptive_batch_sizing: bool = True
    min_batch_size: int = MIN_BATCH_SIZE
    buffered_rows: int = 0
    peak_buffered_rows: int = 0
    parallelism: int = 1
    handle: "QueryHandle | None" = None
    faults: "FaultInjector | None" = None
    spill: "SpillManager | None" = None
    #: Pinned append epoch (None until the first table is pinned) and the
    #: per-table snapshot registry — every operator of one query resolves a
    #: table through :meth:`pin`, so they all agree on one immutable prefix
    #: even while writers append (see ``repro.relational.table``).
    epoch: "int | None" = None
    snapshots: dict = field(default_factory=dict, repr=False, compare=False)
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def emit(self, rows: int, label: str = "") -> None:
        """Count ``rows`` rows emitted downstream by operator ``label``."""
        if self.handle is not None:
            self.handle.check()
        if self.faults is not None:
            self.faults.on_emit(self, label, rows)
        if self.parallelism > 1:
            with self.lock:
                self.rows_produced += rows
                if label:
                    self.operator_rows[label] = (
                        self.operator_rows.get(label, 0) + rows
                    )
            return
        self.rows_produced += rows
        if label:
            self.operator_rows[label] = self.operator_rows.get(label, 0) + rows

    def buffer(self, label: str = "", tracked: bool = True) -> Buffer:
        """Open a :class:`Buffer` accounting handle for buffered state."""
        return Buffer(self, label, tracked)

    def pin(self, table):
        """The query's immutable snapshot of ``table`` (memoized).

        The first pin fixes the query's epoch; every later pin — any
        table, any thread — resolves at that same epoch, so all operators
        observe one cross-table-consistent prefix.  Entry points pre-pin
        every table a plan touches (:func:`pin_plan`) from the driver
        thread before workers start, making worker-side calls lock-free
        cache hits.
        """
        snap = self.snapshots.get(id(table))
        if snap is None:
            with self.lock:
                snap = self.snapshots.get(id(table))
                if snap is None:
                    if self.epoch is None:
                        from repro.relational.table import current_epoch

                        self.epoch = current_epoch()
                    snap = table.snapshot_at(self.epoch)
                    self.snapshots[id(table)] = snap
        return snap

    def spill_limit(self) -> int | None:
        """Tracked rows the *query* may keep resident before spilling.

        None when spilling is disarmed (or armed with neither a threshold
        nor a budget — nothing to degrade toward).  Breakers compare the
        query-wide :attr:`buffered_rows` (not just their own buffer)
        against this limit, so concurrently live breakers share one
        working set instead of claiming a limit each.  The limit never
        exceeds ``memory_budget_rows``: an operator that spills *before*
        growing tracked state past this limit can, by construction, never
        trip the budget's :class:`OutOfMemoryError`.
        """
        spill = self.spill
        if spill is None:
            return None
        threshold = spill.threshold_rows
        budget = self.memory_budget_rows
        if threshold is None:
            return budget
        if budget is None:
            return threshold
        return min(threshold, budget)

    def expansion_batch_size(self, rows_in: int, rows_out: int) -> int:
        """Target chunk size for an expansion with the observed fan-out.

        Expansion operators (adjacency walks, high-multiplicity probes)
        call this with their cumulative input/output row counts; when the
        fan-out exceeds 1 the fixed :attr:`batch_size` target is scaled
        down proportionally (never below :attr:`min_batch_size`) so the
        in-flight chunk a downstream operator must hold stays near one
        "input batch worth" of work.  Chunk boundaries carry no semantics,
        so adaptation never changes results.
        """
        size = self.batch_size
        if not self.adaptive_batch_sizing or rows_in <= 0 or rows_out <= rows_in:
            return size
        shrunk = int(size * rows_in / rows_out)
        if shrunk >= size:
            return size
        # The floor must never *raise* the caller's configured ceiling: a
        # batch_size below min_batch_size is itself the floor.
        return max(min(self.min_batch_size, size), shrunk)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.start_time


@dataclass
class QueryResult:
    """The outcome of executing a physical plan."""

    columns: list[str]
    rows: list[tuple[Any, ...]]
    execution_time: float
    rows_produced: int = 0
    peak_buffered_rows: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """Rows in a canonical order, for order-insensitive comparisons."""
        return sorted(self.rows, key=_sort_key)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def _sort_key(row: tuple) -> tuple:
    # None sorts before everything; mixed types sort by type name first.
    # NaN is ranked by a flag and then *neutralized*: ``NaN < x`` and
    # ``x < NaN`` are both False, so leaving the NaN in the key would stall
    # the tuple comparison at that element and make canonical order depend
    # on arrival order — which differs between the row and columnar engines.
    return tuple(
        (v is not None, type(v).__name__, v != v, 0.0 if v != v else v)
        for v in row
    )


def close_stream(stream: Any) -> None:
    """Close a batch iterator if it supports it (generators always do).

    Explicit closing is the engine's teardown primitive: it raises
    ``GeneratorExit`` at the suspended yield, which runs every operator's
    ``finally`` block down the pipeline — buffers release, worker crews
    stop — deterministically, instead of whenever GC finalizes the
    abandoned iterator.
    """
    close = getattr(stream, "close", None)
    if close is not None:
        close()


def pin_plan(plan: "Operator", ctx: ExecutionContext) -> None:
    """Pin every table a physical plan touches, before execution starts.

    Walks the operator tree (duck-typed: relational operators carry a
    ``table``, graph operators a ``mapping`` and possibly a graph
    ``index``) and registers each table's snapshot in ``ctx``.  Tables
    reached through a graph index are additionally clamped to the extents
    the index build covered, so adjacency walks can never step past a CSR
    built over fewer rows — graph plans read structure *and* attributes at
    the index's version.

    Run on the driver thread so parallel morsel workers only ever hit the
    memoized registry.
    """
    seen: set[int] = set()

    def visit(op) -> None:
        if id(op) in seen:
            return
        seen.add(id(op))
        table = getattr(op, "table", None)
        if table is not None and hasattr(table, "snapshot_at"):
            ctx.pin(table)
        mapping = getattr(op, "mapping", None)
        if mapping is not None and hasattr(mapping, "vertices"):
            for vm in mapping.vertices.values():
                ctx.pin(mapping.catalog.table(vm.table_name))
            for em in mapping.edges.values():
                ctx.pin(mapping.catalog.table(em.table_name))
            index = getattr(op, "index", None)
            if index is not None and hasattr(index, "vertex_rows"):
                for label, rows in index.vertex_rows.items():
                    ctx.pin(mapping.vertex_table(label)).clamp(rows)
                for label, rows in index.edge_rows.items():
                    ctx.pin(mapping.edge_table(label)).clamp(rows)
        # SCAN_GRAPH_TABLE bridges the layers without exposing its graph
        # plan through children(); descend explicitly so the expansion
        # operators underneath (which carry the index) clamp their tables.
        graph_op = getattr(op, "graph_op", None)
        if graph_op is not None:
            visit(graph_op)
        for child in op.children():
            visit(child)

    visit(plan)


def execute_plan(
    plan: "Operator",
    memory_budget_rows: int | None = None,
    batch_size: int | None = None,
    columnar: bool = True,
    parallelism: int | None = None,
    timeout: float | None = None,
    handle: QueryHandle | None = None,
    governor: "MemoryGovernor | None" = None,
    faults: Any = None,
    spill: Any = None,
    ctx: ExecutionContext | None = None,
) -> QueryResult:
    """Run a physical plan to completion and package the result.

    The plan is pulled batch by batch; the accumulating result is itself a
    buffer charged against the memory budget (a fully materialized result
    larger than the budget is an OOM, exactly as in the paper's runs).

    ``columnar`` selects the protocol the plan is pulled through: the
    vectorized columnar path (default; row tuples materialize only at this
    result boundary) or the legacy row-tuple path.  Both produce identical
    rows — the parity suite pins this — so the flag is a performance knob,
    kept for the columnar-vs-row executor benchmarks.

    ``parallelism`` enables morsel-driven parallel execution: the plan is
    rewritten (non-destructively, at this call) with exchange operators
    over per-morsel chain clones and pulled with a worker pool of that
    size.  ``None`` reads ``REPRO_PARALLELISM`` (default 1 = serial, the
    byte-for-byte reference behavior).

    Lifecycle knobs:

    * ``timeout`` — per-query deadline in seconds (None reads
      ``REPRO_QUERY_TIMEOUT``); expiry raises :class:`QueryTimeout` at the
      next batch boundary.
    * ``handle`` — a caller-owned :class:`QueryHandle` for cooperative
      cancellation from another thread; overrides ``timeout``.
    * ``governor`` — the :class:`MemoryGovernor` to lease this query's
      budget from (None = the process-global governor, unbounded by
      default, so per-query budget semantics — and the paper's OOM trip
      points — are unchanged).
    * ``faults`` — a :class:`FaultInjector` or spec string (None reads
      ``REPRO_FAULTS``).
    * ``spill`` — out-of-core arming (see
      :func:`~repro.exec.spill.resolve_spill`): ``None`` reads
      ``REPRO_SPILL_DIR`` / ``REPRO_SPILL_THRESHOLD`` (unset = disarmed,
      the default — the paper's OOM trip points stay byte-exact);
      ``False`` disarms regardless of environment; ``True`` / a config /
      a directory string / a threshold int arm it.  Armed, the pipeline
      breakers — and this function's own RESULT accumulation — keep at
      most ``ctx.spill_limit()`` rows resident per buffer and move the
      rest to per-query temp files, reaped in the ``finally`` below on
      every exit path.  The assembled result list handed back to the
      caller is, as always, the caller's own untracked memory.
    * ``ctx`` — a caller-owned :class:`ExecutionContext`; when given, the
      budget/batch/parallelism/handle/faults/spill arguments above are
      ignored in favor of the context's own fields (tests and the serving
      tier use this to observe ``buffered_rows`` after teardown).

    Teardown is unconditional: however the pull ends — completion, OOM,
    timeout, cancellation, injected fault — the batch iterator is closed
    (running operator ``finally`` blocks), the RESULT buffer is released,
    and the budget lease returns to the governor.  After a failure the
    context's ``buffered_rows`` is zero and no worker threads remain.
    """
    from repro.exec.faults import resolve_faults
    from repro.exec.governor import resolve_governor
    from repro.exec.scheduler import parallelize_plan, resolve_parallelism
    from repro.exec.spill import SpillManager, resolve_spill

    owned_spill: "SpillManager | None" = None
    if ctx is None:
        if handle is None:
            deadline = resolve_timeout(timeout)
            if deadline is not None:
                handle = QueryHandle(deadline)
        ctx = ExecutionContext(
            memory_budget_rows=memory_budget_rows,
            parallelism=resolve_parallelism(parallelism),
            handle=handle,
            faults=resolve_faults(faults),
        )
        if batch_size is not None:
            ctx.batch_size = batch_size
        spill_config = resolve_spill(spill)
        if spill_config is not None:
            owned_spill = SpillManager(spill_config).bind(ctx)
            ctx.spill = owned_spill
    lease = resolve_governor(governor).lease(ctx.memory_budget_rows, label="query")
    result_buffer = ctx.buffer("RESULT")
    stream = None
    try:
        # The lease carries the requested per-query budget through
        # unchanged (a governor admits or denies, it never shrinks), so
        # under the default unbounded governor this assignment is the
        # identity and the paper's OOM trip points are untouched.
        ctx.memory_budget_rows = lease.budget_rows
        # Pin the query's table snapshots before any batch is pulled (and
        # before the morsel grid is laid out), so concurrent appends are
        # invisible for the rest of the query.
        pin_plan(plan, ctx)
        executed = plan
        if ctx.parallelism > 1:
            executed = parallelize_plan(plan, ctx.parallelism, ctx.batch_size, ctx=ctx)
        rows: list[tuple] = []
        # Out-of-core RESULT accumulation: once the resident prefix would
        # exceed the spill limit, every later batch spools to one temp
        # file (columnar batches as typed frames — the serializer's main
        # consumer) and reads back in order after the stream completes.
        # Once spooling starts it never reverts, so row order is exactly
        # the stream order.
        limit = ctx.spill_limit()
        spool = None
        if columnar:
            stream = executed.columnar_batches(ctx)
            for cb in stream:
                n = len(cb)
                if spool is not None or (
                    limit is not None and ctx.buffered_rows + n > limit
                ):
                    if spool is None:
                        spool = ctx.spill.create_file("RESULT")
                    spool.append_batch(cb)
                    continue
                rows.extend(cb.to_rows())
                result_buffer.grow(n)
        else:
            stream = executed.batches(ctx)
            for batch in stream:
                if spool is not None or (
                    limit is not None and ctx.buffered_rows + len(batch) > limit
                ):
                    if spool is None:
                        spool = ctx.spill.create_file("RESULT")
                    spool.append_rows(list(batch))
                    continue
                rows.extend(batch)
                result_buffer.grow(len(batch))
        if spool is not None:
            for chunk in spool.read_rows():
                rows.extend(chunk)
        return QueryResult(
            columns=list(plan.output_columns),
            rows=rows,
            execution_time=ctx.elapsed,
            rows_produced=ctx.rows_produced,
            peak_buffered_rows=ctx.peak_buffered_rows,
        )
    finally:
        if stream is not None:
            close_stream(stream)
        result_buffer.release()
        if owned_spill is not None:
            owned_spill.close()
        lease.release()
