"""Columnar batches: struct-of-arrays chunks with selection vectors.

A :class:`ColumnarBatch` is the unit of data flow of the vectorized
execution path: instead of a ``list`` of row tuples, a batch holds one
value sequence per output column plus an optional **selection vector** — a
sequence of row indices into those columns.  Filters refine the selection
without touching the data; projections that merely reorder columns share
the underlying sequences (zero copy); scans emit the base table's column
lists directly with a ``range`` selection per chunk.

Row tuples are materialized only at protocol boundaries
(:meth:`ColumnarBatch.to_rows`): when a legacy row-protocol operator sits
downstream, or when the final :class:`~repro.exec.context.QueryResult` is
assembled.  Both directions preserve exact row-level semantics, so ported
and unported operators compose freely.

NumPy, when importable, accelerates selection and gather for columns that
are ``numpy.ndarray``\\ s; the feature is gated behind
:func:`set_numpy_enabled` and every code path has a pure-Python fallback,
keeping the package free of hard dependencies.
"""

from __future__ import annotations

from array import array as _array
from typing import Sequence

try:  # pragma: no cover - exercised via the CI numpy leg
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

#: Whether the accelerated gather paths are active.  Auto-detected from
#: numpy importability; flip with :func:`set_numpy_enabled`.
_numpy_enabled = _np is not None


def numpy_available() -> bool:
    """True when numpy could be imported."""
    return _np is not None


def numpy_enabled() -> bool:
    """True when the numpy-accelerated gather paths are active."""
    return _numpy_enabled and _np is not None


def set_numpy_enabled(enabled: bool | None) -> None:
    """Enable/disable numpy acceleration; ``None`` restores auto-detection."""
    global _numpy_enabled
    _numpy_enabled = (_np is not None) if enabled is None else bool(enabled)


class DictVector:
    """Read-optimized view of a dictionary-encoded column.

    Pairs an int64 ``codes`` ndarray (an atomic snapshot of the column's
    code buffer) with the column's live ``values``/``index`` dictionary,
    shared by reference: the dictionary is append-only and every code in
    the snapshot was published *after* its value (see
    ``repro.relational.column.DictColumn``), so decoding never races a
    concurrent writer.  Sequence reads decode to plain strings — row-path
    consumers work unchanged — while the vectorized kernels reach
    ``codes`` directly and stay in the dense integer domain through
    selections, gathers and replication.
    """

    __slots__ = ("codes", "values", "index")

    #: Duck-typed marker shared with ``DictColumn`` (no cross-layer import).
    is_dictionary = True

    def __init__(self, codes, values: list, index: dict):
        self.codes = codes
        self.values = values
        self.index = index

    def __len__(self) -> int:
        return len(self.codes)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return DictVector(self.codes[i], self.values, self.index)
        return self.values[self.codes[i]]

    def __iter__(self):
        values = self.values
        return iter([values[c] for c in self.codes.tolist()])

    def tolist(self) -> list:
        values = self.values
        return [values[c] for c in self.codes.tolist()]


def dict_vector(values) -> "DictVector | None":
    """``values`` as a :class:`DictVector` when it is dictionary-encoded
    (and the numpy paths are active), else ``None`` — the single gate the
    vectorized kernels use for their code-domain fast paths."""
    if _numpy_enabled and type(values) is DictVector:
        return values
    return None


def as_index_array(indices: Sequence[int]):
    """``indices`` as an ndarray suitable for fancy-indexing.

    ``range`` converts via ``np.arange`` — ``np.asarray`` would fall back
    to the per-element sequence protocol, which costs more than the gather
    it feeds.
    """
    if isinstance(indices, _np.ndarray):
        return indices
    if type(indices) is range:
        return _np.arange(indices.start, indices.stop, indices.step, dtype=_np.intp)
    return _np.asarray(indices, dtype=_np.intp)


def gather(values: Sequence, indices: Sequence[int]) -> list:
    """``[values[i] for i in indices]`` with a numpy fast path.

    Always returns a plain Python list (numpy results are converted via
    ``tolist()`` so no numpy scalars leak into row tuples or hash keys).
    """
    if _numpy_enabled and _np is not None:
        if isinstance(values, _np.ndarray):
            return values[as_index_array(indices)].tolist()
        if type(values) is DictVector:
            decode = values.values
            codes = values.codes[as_index_array(indices)]
            return [decode[c] for c in codes.tolist()]
    return [values[i] for i in indices]


def take(values: Sequence, indices: Sequence[int]) -> Sequence:
    """:func:`gather` that stays in the array domain.

    When ``values`` is an ndarray (and numpy is enabled) the result is an
    ndarray, so chained gathers — CSR expansion, pointer follows,
    replication — never round-trip through Python lists.  Non-array inputs
    behave exactly like :func:`gather`.  Use :func:`gather` instead at row
    boundaries, where plain Python values are required.
    """
    if _numpy_enabled and _np is not None:
        if isinstance(values, _np.ndarray):
            return values[as_index_array(indices)]
        if type(values) is DictVector:
            # Stay in the code domain: gather the codes, share the
            # dictionary — selections/joins never decode intermediate rows.
            return DictVector(
                values.codes[as_index_array(indices)],
                values.values,
                values.index,
            )
    return [values[i] for i in indices]


def as_values(values: Sequence) -> Sequence:
    """A column as plain Python values (ndarray -> list, others pass through)."""
    if _np is not None and isinstance(values, _np.ndarray):
        return values.tolist()
    if type(values) is DictVector:
        return values.tolist()
    return values


def is_ndarray(values) -> bool:
    """True when ``values`` is an ndarray and the numpy paths are active."""
    return _numpy_enabled and _np is not None and isinstance(values, _np.ndarray)


#: Widest string (in characters) a column may hold and still vectorize:
#: '<U' arrays cost 4 * max_len bytes per row, so one long outlier value
#: would multiply the cached view's memory by max_len / avg_len.
_MAX_VECTOR_STR_CHARS = 256


def vector_view(values: Sequence) -> Sequence:
    """The read-optimized representation of a column.

    With numpy enabled, typed ``array.array`` buffers convert in one
    ``memcpy`` and cleanly-typed lists (no ``None``, uniform scalar or
    string type) convert by copy; anything that would land in an
    ``object`` dtype — or numpy itself being disabled — returns the input
    unchanged.  The result is always a *copy*: it never locks the source
    buffer against future appends, so callers may cache it and tables stay
    appendable (caches are invalidated on append).

    Conversions that cannot round-trip the exact values are rejected:

    * string columns containing NULs (``'\\x00'`` is truncated by '<U'
      arrays) or values longer than :data:`_MAX_VECTOR_STR_CHARS` (fixed
      width would blow up memory) stay as lists;
    * int values that numpy would coerce to ``float64`` (beyond int64
      range, e.g. after an overflow promotion) stay as lists, so the
      columnar path never sees rounded ints.
    """
    if not _numpy_enabled or _np is None:
        return values
    if isinstance(values, _np.ndarray):
        return values
    if type(values) is DictVector:
        return values
    if getattr(values, "is_dictionary", False):
        # A DictColumn: snapshot the code buffer (tobytes() copies
        # atomically under the GIL — same rationale as the array branch
        # below) and share the append-only dictionary by reference.
        codes = values.codes
        return DictVector(
            _np.frombuffer(codes.tobytes(), dtype=codes.typecode),
            values.values,
            values.index,
        )
    if isinstance(values, _array):
        # Snapshot through tobytes() rather than np.array(values): the
        # latter exports the array's C buffer for the duration of the
        # copy, and a concurrent append (a Table writer on another thread)
        # would then die with "BufferError: cannot resize an array that is
        # exporting buffers".  tobytes() copies atomically under the GIL,
        # so building a view never locks or crashes writers.
        return _np.frombuffer(values.tobytes(), dtype=values.typecode)
    if type(values) is list:
        if values and type(values[0]) is str:
            # Pre-scan string columns before allocating the fixed-width
            # array: rejects NULs, oversized values and mixed types in one
            # pass without building a throwaway '<U' copy.
            for v in values:
                if (
                    type(v) is not str
                    or len(v) > _MAX_VECTOR_STR_CHARS
                    or "\x00" in v
                ):
                    return values
        try:
            view = _np.asarray(values)
        except (TypeError, ValueError, OverflowError):
            return values
        # Accept the view only when the dtype provably round-trips the
        # source values: numpy happily coerces mixed lists to a common
        # dtype ([1, 'a'] -> '<U21', [True, 2] -> int64, big ints ->
        # float64), which would silently change what the columnar path
        # sees versus the row path.
        kind = view.dtype.kind
        if kind == "U":
            if type(values[0]) is not str:  # stringified non-str values
                return values
        elif kind in "iu":
            if not all(type(v) is int for v in values):
                return values
        elif kind == "b":
            if not all(type(v) is bool for v in values):
                return values
        elif kind == "f":
            if not all(type(v) is float for v in values):
                return values
        else:  # object, datetime, complex, ... — no vectorized story
            return values
        return view
    return values


def index_vector(n: int) -> Sequence[int]:
    """``range(n)`` as the best gatherable domain (ndarray when enabled)."""
    if _numpy_enabled and _np is not None:
        return _np.arange(n, dtype=_np.intp)
    return range(n)


def cached_vector(cache: dict, key, values: Sequence) -> Sequence:
    """Memoized :func:`vector_view` for immutable columns (index arrays)."""
    if not _numpy_enabled or _np is None:
        return values
    view = cache.get(key)
    if view is None:
        view = vector_view(values)
        cache[key] = view
    return view


class ColumnarBatch:
    """One chunk of rows stored column-wise.

    Attributes:
        columns: one indexable sequence per output column.  Sequences may be
            shared with other batches or with base-table storage (zero-copy
            slices); treat them as read-only.
        length: the number of addressable positions in each column (the raw
            row space the selection indexes into).  When ``selection`` is
            None every column must have exactly ``length`` elements.
        selection: optional sequence of row indices (ints in
            ``[0, length)``); when present, the batch's visible rows are
            ``columns[c][i] for i in selection`` and ``length`` only bounds
            the index space.  ``None`` means all ``length`` rows are
            visible (the all-selected fast path).
    """

    __slots__ = ("columns", "length", "selection")

    def __init__(
        self,
        columns: list,
        length: int,
        selection: Sequence[int] | None = None,
    ):
        self.columns = columns
        self.length = length
        self.selection = selection

    # ------------------------------------------------------------------ #
    # construction / conversion boundaries
    # ------------------------------------------------------------------ #

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "ColumnarBatch":
        """Transpose a list of row tuples into a dense columnar batch."""
        if not rows:
            return cls([], 0, None)
        if not rows[0]:
            return cls([], len(rows), None)
        return cls([list(c) for c in zip(*rows)], len(rows), None)

    def to_rows(self) -> list[tuple]:
        """Materialize the visible rows as a list of tuples."""
        sel = self.selection
        if not self.columns:
            return [()] * (len(sel) if sel is not None else self.length)
        if sel is None:
            return list(zip(*(as_values(c) for c in self.columns)))
        return list(zip(*(gather(c, sel) for c in self.columns)))

    # ------------------------------------------------------------------ #
    # shape
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.selection) if self.selection is not None else self.length

    @property
    def width(self) -> int:
        return len(self.columns)

    # ------------------------------------------------------------------ #
    # column access
    # ------------------------------------------------------------------ #

    def column(self, i: int) -> Sequence:
        """Column ``i``'s visible values (gathered when a selection is set)."""
        if self.selection is None:
            return as_values(self.columns[i])
        return gather(self.columns[i], self.selection)

    def column_vector(self, i: int) -> Sequence:
        """Column ``i``'s visible values in the array domain when possible.

        Unlike :meth:`column`, an ndarray column stays an ndarray (values
        may be numpy scalars); use only inside vectorized kernels, never to
        build row tuples.
        """
        if self.selection is None:
            return self.columns[i]
        return take(self.columns[i], self.selection)

    def gathered_columns(self) -> list:
        """All columns with the selection applied (dense, row-aligned)."""
        return [self.column(i) for i in range(len(self.columns))]

    def compact(self) -> "ColumnarBatch":
        """An equivalent batch with no selection vector (gathers once)."""
        if self.selection is None:
            return self
        return ColumnarBatch(self.gathered_columns(), len(self), None)

    # ------------------------------------------------------------------ #
    # row selection
    # ------------------------------------------------------------------ #

    def take(self, positions: Sequence[int]) -> "ColumnarBatch":
        """New batch keeping the visible rows at ``positions`` (in order).

        ``positions`` index *visible* rows; they compose with any existing
        selection.  An empty ``positions`` yields an empty batch.
        """
        sel = self.selection
        if sel is None:
            new_sel: Sequence[int] = positions
        else:
            new_sel = take(sel, positions)
        return ColumnarBatch(self.columns, self.length, new_sel)

    def head(self, k: int) -> "ColumnarBatch":
        """The first ``k`` visible rows (self when ``k >= len(self)``)."""
        n = len(self)
        if k >= n:
            return self
        sel = self.selection
        if sel is None:
            return ColumnarBatch(self.columns, self.length, range(k))
        return ColumnarBatch(self.columns, self.length, sel[:k])


__all__ = [
    "ColumnarBatch",
    "DictVector",
    "dict_vector",
    "gather",
    "take",
    "as_values",
    "is_ndarray",
    "vector_view",
    "index_vector",
    "cached_vector",
    "numpy_available",
    "numpy_enabled",
    "set_numpy_enabled",
]
