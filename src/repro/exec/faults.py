"""Fault-injection harness: deliberate failures at executor boundaries.

The paper's evaluation treats failures as first-class results (OOM and OT
entries), which means the engine's *unwind* paths are load-bearing — and
unwind paths are exactly the code normal tests never exercise.  This
module injects errors, artificial OOMs, delays, and cancellations at the
same named boundaries where the lifecycle layer checks for cancellation:

* ``emit``  — ``ExecutionContext.emit`` (every operator's per-batch
  accounting hook, labeled with the operator's ``cached_label()``);
* ``grow``  — ``Buffer.grow`` (every tracked intermediate, labeled with
  the buffer label, e.g. ``"HASH_JOIN (…) build"``);
* ``exchange`` — the morsel scheduler's queue hand-offs (labels
  ``"EXCHANGE put"`` / ``"EXCHANGE get"`` / ``"EXCHANGE fold"``);
* ``spill`` — the out-of-core layer's disk I/O (labels
  ``"<buffer label> [write]"`` / ``[read]`` / ``[merge]``), where the
  ``disk`` kind below simulates a full or failing spill device.

A schedule is armed either programmatically (pass a
:class:`FaultInjector` to ``execute_plan(faults=...)``) or via the
``REPRO_FAULTS`` env var.  The spec grammar is semicolon-separated
faults of comma-separated ``key=value`` pairs::

    REPRO_FAULTS="kind=error,site=grow,label=build,after=3"
    REPRO_FAULTS="kind=delay,delay=0.05,site=emit;kind=oom,site=exchange"

Keys (all optional except ``kind``):

* ``kind``  — ``error`` | ``oom`` | ``delay`` | ``cancel`` | ``disk``
  (``disk`` raises ``OSError(ENOSPC)``, the real exception class a full
  spill device produces — out-of-core unwind paths must survive plain
  environment errors, not just engine-domain ones)
* ``site``  — ``emit`` | ``grow`` | ``exchange`` | ``spill`` | ``any``
  (default)
* ``label`` — substring match against the boundary label ('' = any)
* ``after`` — fire on the Nth matching hit (default 1; a huge value like
  ``after=1000000000`` arms the harness without ever firing — the CI
  chaos leg runs tier-1 this way to pin zero behavioral drift)
* ``times`` — how many consecutive hits fire after that (default 1;
  0 = never stop)
* ``delay`` — seconds for ``kind=delay`` (default 0.01); the sleep polls
  the query handle so a cancelled/timed-out query is not held hostage
* ``rate``/``seed`` — probabilistic firing: each matching hit fires with
  probability ``rate`` from a per-fault ``random.Random(seed)`` stream
  (deterministic across runs; ``after``/``times`` still gate)

Injection sites pay a single ``is None`` test when no injector is armed —
the serial hot path is untouched by default, the same contract the
cancellation checks honor.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from typing import TYPE_CHECKING, Iterator

from repro.errors import InjectedFault, OutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.context import ExecutionContext
    from repro.exec.operator import Operator

__all__ = [
    "Fault",
    "FaultInjector",
    "parse_faults",
    "resolve_faults",
    "plan_boundaries",
]

_KINDS = ("error", "oom", "delay", "cancel", "disk")
_SITES = ("emit", "grow", "exchange", "spill", "any")


class Fault:
    """One armed fault: where it matches, when it fires, what it does."""

    __slots__ = (
        "kind",
        "site",
        "label",
        "after",
        "times",
        "delay",
        "rate",
        "_rng",
        "_hits",
        "_fired",
    )

    def __init__(
        self,
        kind: str,
        site: str = "any",
        label: str = "",
        after: int = 1,
        times: int = 1,
        delay: float = 0.01,
        rate: float = 1.0,
        seed: int = 0,
    ):
        if kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, got {kind!r}")
        if site not in _SITES:
            raise ValueError(f"fault site must be one of {_SITES}, got {site!r}")
        if after < 1:
            raise ValueError(f"fault 'after' must be >= 1, got {after}")
        self.kind = kind
        self.site = site
        self.label = "" if label == "*" else label
        self.after = after
        self.times = times
        self.delay = delay
        self.rate = rate
        self._rng = random.Random(seed) if rate < 1.0 else None
        self._hits = 0
        self._fired = 0

    def matches(self, site: str, label: str) -> bool:
        if self.site != "any" and self.site != site:
            return False
        return self.label in label

    def should_fire(self) -> bool:
        """Advance this fault's hit counter; True when this hit fires.

        Caller holds the injector lock, so the counters need none of
        their own.
        """
        self._hits += 1
        if self._hits < self.after:
            return False
        if self.times > 0 and self._fired >= self.times:
            return False
        if self._rng is not None and self._rng.random() >= self.rate:
            return False
        self._fired += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fault(kind={self.kind!r}, site={self.site!r}, label={self.label!r}, "
            f"after={self.after}, times={self.times}, hits={self._hits})"
        )


class FaultInjector:
    """Holds armed faults and evaluates them at executor boundaries.

    One injector is shared by every worker thread of a query, so hit
    counting is serialized under a lock; the decision of *whether a fault
    fires* is therefore deterministic in hit order (and fully
    deterministic in serial runs).
    """

    def __init__(self, faults: "list[Fault] | None" = None):
        self.faults = list(faults or [])
        self._lock = threading.Lock()

    def add(self, fault: Fault) -> "FaultInjector":
        self.faults.append(fault)
        return self

    # -- boundary hooks -------------------------------------------------

    def on_emit(self, ctx: "ExecutionContext", label: str, rows: int) -> None:
        self._hit(ctx, "emit", label)

    def on_grow(self, ctx: "ExecutionContext", label: str, rows: int) -> None:
        self._hit(ctx, "grow", label)

    def on_exchange(self, ctx: "ExecutionContext", point: str, label: str) -> None:
        self._hit(ctx, "exchange", f"{label} [{point}]")

    def on_spill(self, ctx: "ExecutionContext", point: str, label: str) -> None:
        self._hit(ctx, "spill", f"{label} [{point}]")

    # -- firing ---------------------------------------------------------

    def _hit(self, ctx: "ExecutionContext", site: str, label: str) -> None:
        fired: Fault | None = None
        with self._lock:
            for fault in self.faults:
                if fault.matches(site, label) and fault.should_fire():
                    fired = fault
                    break
        if fired is not None:
            self._fire(fired, ctx, site, label)

    def _fire(
        self, fault: Fault, ctx: "ExecutionContext", site: str, label: str
    ) -> None:
        if fault.kind == "error":
            raise InjectedFault(f"injected fault at {site}:{label}")
        if fault.kind == "oom":
            raise OutOfMemoryError(
                ctx.buffered_rows, ctx.memory_budget_rows or 0, label
            )
        if fault.kind == "disk":
            # The real exception class a full spill device raises, on
            # purpose: the unwind paths must not depend on engine-domain
            # error types to clean up temp files and buffers.
            raise OSError(errno.ENOSPC, f"injected disk fault at {site}:{label}")
        if fault.kind == "cancel":
            handle = ctx.handle
            if handle is not None:
                handle.cancel(f"injected cancel at {site}:{label}")
                handle.check()
            return
        # kind == "delay": sleep in short slices, honoring cancellation so
        # a delayed worker can't outlive its query.
        deadline = time.monotonic() + fault.delay
        handle = ctx.handle
        while True:
            if handle is not None:
                handle.check()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, 0.005))


def parse_faults(spec: str) -> FaultInjector:
    """Parse a ``REPRO_FAULTS``-style spec into an injector.

    Semicolon-separated faults; each fault is comma-separated
    ``key=value`` pairs (see the module docstring for the grammar).
    """
    faults: list[Fault] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kwargs: dict[str, object] = {}
        for pair in clause.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(
                    f"fault spec entries must be key=value, got {pair!r}"
                )
            key, _, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if key in ("kind", "site", "label"):
                kwargs[key] = value
            elif key in ("after", "times", "seed"):
                kwargs[key] = int(value)
            elif key in ("delay", "rate"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        if "kind" not in kwargs:
            raise ValueError(f"fault spec clause {clause!r} is missing kind=")
        faults.append(Fault(**kwargs))  # type: ignore[arg-type]
    return FaultInjector(faults)


def resolve_faults(value: "FaultInjector | str | None") -> "FaultInjector | None":
    """Resolve the effective injector: explicit value wins, then env.

    ``None`` reads ``REPRO_FAULTS`` (unset/empty = no injection, the
    default); a string is parsed as a spec; an injector passes through.
    Each resolution builds a fresh injector so hit counters never leak
    between queries.
    """
    if value is None:
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        return parse_faults(spec) if spec else None
    if isinstance(value, str):
        return parse_faults(value)
    return value


def _walk(plan: "Operator") -> "Iterator[Operator]":
    yield plan
    for child in plan.children():
        yield from _walk(child)


def plan_boundaries(plan: "Operator") -> list[str]:
    """The operator labels of a plan, in pre-order, deduplicated.

    These are the ``emit``-site labels the fault matrix iterates over; for
    a parallelized plan (run through ``parallelize_plan`` first) the list
    includes the cloned per-morsel chains' labels and the exchange
    operators themselves.
    """
    seen: set[str] = set()
    labels: list[str] = []
    for op in _walk(plan):
        label = op.cached_label()
        if label not in seen:
            seen.add(label)
            labels.append(label)
    return labels
