"""Process-level memory governor: per-query budget leases from a global pool.

The executor's memory budget has always been *per query*: each
:class:`~repro.exec.context.ExecutionContext` carries its own
``memory_budget_rows`` cliff, calibrated so the paper's OOM entries
(RelGoNoEI on QC3, Kùzu on IC3-1) trip exactly.  A serving tier runs many
queries at once, and the box has one memory, so per-query budgets must be
*leased* from a process-global pool — that admission-control brick is this
module.

Design constraints, in order:

1. **Default config is the identity.**  The default governor is unbounded:
   every lease is granted immediately with exactly the requested per-query
   budget, so single-query semantics — and the paper's OOM trip points —
   are byte-exact with or without the governor in the call path.
2. **Release is guaranteed by teardown.**  ``execute_plan`` /
   ``execute_iter`` release the lease in the same ``finally`` that closes
   the operator stream, so a cancelled, timed-out, faulted, or abandoned
   query returns its budget to the pool deterministically (not at GC).
3. **Admission is explicit.**  A bounded governor either grants the lease,
   waits up to an admission timeout for running queries to finish, or
   raises :class:`~repro.errors.AdmissionError` — it never silently shrinks
   a request.

Env knobs (read once per :func:`global_governor` build):

* ``REPRO_GLOBAL_BUDGET_ROWS`` — total leasable rows (unset/empty/0 =
  unbounded, the default).
* ``REPRO_ADMISSION_TIMEOUT`` — seconds a lease request may wait for
  capacity before raising ``AdmissionError`` (default 0 = fail fast).
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import AdmissionError

__all__ = [
    "MemoryGovernor",
    "MemoryLease",
    "global_governor",
    "set_global_governor",
    "resolve_governor",
]


class MemoryLease:
    """A granted slice of the governor's pool; release is idempotent.

    ``budget_rows`` is the per-query budget the executing context should
    run under (``None`` = unlimited, exactly as a caller-passed
    ``memory_budget_rows=None`` behaves today).  ``charged_rows`` is what
    the lease counts against the pool — zero for unlimited requests under
    an unbounded governor, so observability never distorts admission.
    """

    __slots__ = ("budget_rows", "charged_rows", "label", "_governor", "_released")

    def __init__(
        self,
        governor: "MemoryGovernor",
        budget_rows: int | None,
        charged_rows: int,
        label: str,
    ):
        self.budget_rows = budget_rows
        self.charged_rows = charged_rows
        self.label = label
        self._governor = governor
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Return this lease's charge to the pool (safe to call twice)."""
        if self._released:
            return
        self._released = True
        self._governor._release(self)

    def __enter__(self) -> "MemoryLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "held"
        return (
            f"MemoryLease(budget_rows={self.budget_rows}, "
            f"charged_rows={self.charged_rows}, label={self.label!r}, {state})"
        )


class MemoryGovernor:
    """Grants per-query budget leases from a global row pool.

    ``total_rows=None`` (the default) is the unbounded governor: leases are
    granted immediately and carry the request through unchanged.  A bounded
    governor admits a query only while its requested budget fits in the
    remaining pool; a request for an unlimited budget (``None``) claims the
    whole pool, serializing against every other lease.
    """

    def __init__(
        self,
        total_rows: int | None = None,
        admission_timeout: float = 0.0,
    ):
        if total_rows is not None and total_rows <= 0:
            total_rows = None
        self.total_rows = total_rows
        self.admission_timeout = max(0.0, admission_timeout)
        self._cond = threading.Condition()
        self._leased_rows = 0
        self._active = 0

    @property
    def leased_rows(self) -> int:
        with self._cond:
            return self._leased_rows

    @property
    def active_leases(self) -> int:
        with self._cond:
            return self._active

    def lease(
        self,
        budget_rows: int | None = None,
        label: str = "",
        timeout: float | None = None,
    ) -> MemoryLease:
        """Lease a per-query budget; block up to the admission timeout.

        Raises :class:`AdmissionError` immediately for requests that can
        never fit, and after the timeout for requests waiting on running
        queries to release capacity.
        """
        if self.total_rows is None:
            # Unbounded pool: the lease is the identity on the request.
            with self._cond:
                self._active += 1
                charge = budget_rows if budget_rows and budget_rows > 0 else 0
                self._leased_rows += charge
            return MemoryLease(self, budget_rows, charge, label)

        total = self.total_rows
        want = total if budget_rows is None else budget_rows
        if want > total:
            raise AdmissionError(want, total, self.leased_rows)
        granted = None if budget_rows is None else budget_rows
        wait = self.admission_timeout if timeout is None else max(0.0, timeout)
        deadline = time.monotonic() + wait
        with self._cond:
            while self._leased_rows + want > total:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise AdmissionError(want, total, self._leased_rows)
                self._cond.wait(min(remaining, 0.05))
            self._leased_rows += want
            self._active += 1
        return MemoryLease(self, granted, want, label)

    def _release(self, lease: MemoryLease) -> None:
        with self._cond:
            self._leased_rows -= lease.charged_rows
            self._active -= 1
            self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryGovernor(total_rows={self.total_rows}, "
            f"leased_rows={self.leased_rows}, active={self.active_leases})"
        )


_GLOBAL: MemoryGovernor | None = None
_GLOBAL_LOCK = threading.Lock()


def _governor_from_env() -> MemoryGovernor:
    raw = os.environ.get("REPRO_GLOBAL_BUDGET_ROWS", "").strip()
    total: int | None = None
    if raw:
        try:
            total = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_GLOBAL_BUDGET_ROWS must be an integer, got {raw!r}"
            ) from exc
    raw_timeout = os.environ.get("REPRO_ADMISSION_TIMEOUT", "").strip()
    admission_timeout = 0.0
    if raw_timeout:
        try:
            admission_timeout = float(raw_timeout)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_ADMISSION_TIMEOUT must be a number, got {raw_timeout!r}"
            ) from exc
    return MemoryGovernor(total_rows=total, admission_timeout=admission_timeout)


def global_governor() -> MemoryGovernor:
    """The process-wide governor (built from env on first use)."""
    global _GLOBAL
    if _GLOBAL is None:
        with _GLOBAL_LOCK:
            if _GLOBAL is None:
                _GLOBAL = _governor_from_env()
    return _GLOBAL


def set_global_governor(governor: MemoryGovernor | None) -> MemoryGovernor | None:
    """Swap the process-wide governor; returns the previous one.

    ``None`` resets to lazy env-driven construction (tests use this to
    restore the default after installing a bounded governor).
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        previous = _GLOBAL
        _GLOBAL = governor
    return previous


def resolve_governor(governor: MemoryGovernor | None) -> MemoryGovernor:
    """An explicit governor wins; otherwise the process-global one."""
    return governor if governor is not None else global_governor()
