"""Graph-index invariants, property-checked on random RGMappings."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.graph.index import IN, OUT, build_graph_index
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType

import pytest


@st.composite
def random_graphs(draw):
    n_vertices = draw(st.integers(1, 30))
    n_edges = draw(st.integers(0, 60))
    catalog = Catalog()
    catalog.create_table(
        TableSchema("V", [Column("id", DataType.INT)], primary_key="id"),
        rows=[(i * 7,) for i in range(n_vertices)],  # non-contiguous PKs
    )
    edge_rows = []
    for e in range(n_edges):
        s = draw(st.integers(0, n_vertices - 1)) * 7
        t = draw(st.integers(0, n_vertices - 1)) * 7
        edge_rows.append((e, s, t))
    catalog.create_table(
        TableSchema(
            "E",
            [
                Column("id", DataType.INT),
                Column("s", DataType.INT),
                Column("t", DataType.INT),
            ],
            primary_key="id",
            foreign_keys=[ForeignKey("s", "V", "id"), ForeignKey("t", "V", "id")],
        ),
        rows=edge_rows,
    )
    mapping = RGMapping("g", catalog)
    mapping.add_vertex("V")
    mapping.add_edge("E", source=("V", "s"), target=("V", "t"))
    return catalog, mapping


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_ev_index_resolves_foreign_keys(data):
    catalog, mapping = data
    index = build_graph_index(mapping)
    ev = index.edge_index("E")
    vtable = catalog.table("V")
    etable = catalog.table("E")
    for rowid in range(etable.num_rows):
        assert vtable.value(ev.src_rowids[rowid], "id") == etable.value(rowid, "s")
        assert vtable.value(ev.dst_rowids[rowid], "id") == etable.value(rowid, "t")


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_csr_partitions_all_edges(data):
    """Every edge appears exactly once in the out-CSR and once in the in-CSR."""
    catalog, mapping = data
    index = build_graph_index(mapping)
    etable = catalog.table("E")
    for direction in (OUT, IN):
        adj = index.adjacency("V", "E", direction)
        assert adj.offsets[0] == 0
        assert adj.offsets[-1] == etable.num_rows
        assert sorted(adj.edge_rowids) == list(range(etable.num_rows))
        # Offsets are monotone.
        assert all(a <= b for a, b in zip(adj.offsets, adj.offsets[1:]))


@settings(max_examples=60, deadline=None)
@given(random_graphs())
def test_csr_adjacency_consistent_with_ev(data):
    catalog, mapping = data
    index = build_graph_index(mapping)
    ev = index.edge_index("E")
    out_adj = index.adjacency("V", "E", OUT)
    for v in range(catalog.table("V").num_rows):
        for e in out_adj.edges_of(v):
            assert ev.src_rowids[e] == v


@settings(max_examples=40, deadline=None)
@given(random_graphs())
def test_degrees_sum_to_edge_count(data):
    catalog, mapping = data
    index = build_graph_index(mapping)
    adj = index.adjacency("V", "E", OUT)
    total = sum(adj.degree(v) for v in range(catalog.table("V").num_rows))
    assert total == catalog.table("E").num_rows


def test_dangling_edge_rejected():
    catalog = Catalog()
    catalog.create_table(
        TableSchema("V", [Column("id", DataType.INT)], primary_key="id"),
        rows=[(1,)],
    )
    catalog.create_table(
        TableSchema(
            "E",
            [
                Column("id", DataType.INT),
                Column("s", DataType.INT),
                Column("t", DataType.INT),
            ],
            primary_key="id",
        ),
        rows=[(0, 1, 99)],  # 99 dangles
    )
    mapping = RGMapping("g", catalog)
    mapping.add_vertex("V")
    mapping.add_edge("E", source=("V", "s"), target=("V", "t"))
    with pytest.raises(SchemaError):
        build_graph_index(mapping)
    with pytest.raises(SchemaError):
        mapping.validate()
