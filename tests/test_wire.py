"""Wire protocol: framing, typed error round-trips, adversarial clients.

The serving suite (``test_serving.py``) already exercises the full
session surface over the wire under ``REPRO_WIRE=1``; this module pins
the protocol itself:

1. **Framing** — length-prefixed JSON round-trips; oversized and
   malformed frames are refused with ``PROTOCOL_ERROR`` and the
   connection is dropped, without wedging the server.
2. **Typed errors** — ``QueryTimeout`` / ``OutOfMemoryError`` /
   ``AdmissionError`` / ``ParameterError`` cross the socket as stable
   codes and re-raise as the same class with their structured payload.
3. **Adversarial lifecycle** — mid-stream client disconnects, cancel
   racing completion, server close with queries in flight: nothing
   hangs, nothing leaks (threads, leases, spill files).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    AdmissionError,
    OutOfMemoryError,
    ParameterError,
    QueryCancelled,
    QueryTimeout,
    SessionClosed,
    error_from_wire,
    error_to_wire,
)
from repro.exec.governor import MemoryGovernor
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.serving import Client, Database, Server
from repro.serving.wire import MAX_FRAME, PROTOCOL_VERSION, recv_frame, send_frame
from tests.test_lifecycle import assert_no_repro_threads

#: A 3-way self-join over 4000 rows: slow enough that cancellation and
#: disconnect tests reliably catch it mid-flight.
SLOW_SQL = (
    "SELECT COUNT(*) AS n FROM People p1, People p2, People p3 "
    "WHERE p1.age = p2.age AND p2.age = p3.age"
)


def _people_db(n=4, workers=None, **kwargs) -> Database:
    rows = (
        [(1, "Ann", 34), (2, "Bob", 28), (3, "Cid", 41), (4, "Dee", 28)]
        if n == 4
        else [(i, f"n{i}", i % 50) for i in range(n)]
    )
    catalog = Catalog()
    catalog.create_table(
        TableSchema(
            "People",
            [
                Column("id", DataType.INT),
                Column("name", DataType.STRING),
                Column("age", DataType.INT),
            ],
            primary_key="id",
        ),
        rows=rows,
    )
    return Database(catalog=catalog, workers=workers, **kwargs)


@pytest.fixture()
def served():
    """A served people database; closed (and leak-checked) at teardown."""
    db = _people_db()
    server = Server(db)
    yield db, server
    server.close()
    db.close()
    assert_no_repro_threads()


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #


class TestFraming:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"seq": 1, "type": "hello", "protocol": 1})
            assert recv_frame(b) == {"seq": 1, "type": "hello", "protocol": 1}
        finally:
            a.close()
            b.close()

    def test_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_oversized_frame_refused(self, served):
        db, server = served
        with socket.create_connection(server.address, timeout=5) as sock:
            # A header claiming a frame bigger than MAX_FRAME: the server
            # must answer PROTOCOL_ERROR and hang up, not try to read it.
            sock.sendall(struct.pack(">I", MAX_FRAME + 1))
            reply = recv_frame(sock)
            assert reply is not None and reply["type"] == "error"
            assert reply["error"]["code"] == "PROTOCOL_ERROR"
            assert recv_frame(sock) is None  # connection dropped

    def test_malformed_json_refused(self, served):
        db, server = served
        with socket.create_connection(server.address, timeout=5) as sock:
            body = b"this is not json {"
            sock.sendall(struct.pack(">I", len(body)) + body)
            reply = recv_frame(sock)
            assert reply is not None and reply["type"] == "error"
            assert reply["error"]["code"] == "PROTOCOL_ERROR"
            assert recv_frame(sock) is None

    def test_unknown_frame_type_refused(self, served):
        db, server = served
        with socket.create_connection(server.address, timeout=5) as sock:
            send_frame(sock, {"seq": 1, "type": "launch_missiles"})
            reply = recv_frame(sock)
            assert reply["error"]["code"] == "PROTOCOL_ERROR"
            assert recv_frame(sock) is None

    def test_protocol_version_mismatch_refused(self, served):
        db, server = served
        with socket.create_connection(server.address, timeout=5) as sock:
            send_frame(sock, {"seq": 1, "type": "hello", "protocol": 999})
            reply = recv_frame(sock)
            assert reply["error"]["code"] == "PROTOCOL_ERROR"
            assert "version" in reply["error"]["message"]

    def test_garbage_does_not_wedge_other_clients(self, served):
        db, server = served
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.sendall(struct.pack(">I", 8) + b"\xff\xfe\x00\x01bad!")
            recv_frame(sock)  # PROTOCOL_ERROR
        # A well-behaved client connected after the abuse still works.
        with Client(server.address) as client:
            r = client.execute("SELECT name FROM People WHERE age = ?", params=[28])
            assert sorted(r.rows) == [("Bob",), ("Dee",)]


# ---------------------------------------------------------------------- #
# typed error round-trips
# ---------------------------------------------------------------------- #


class TestErrorRoundTrip:
    def test_wire_codes_cover_structured_errors(self):
        # Serialization unit check, no socket: each structured error
        # reconstructs through its real constructor.
        for exc in (
            QueryTimeout(1.5, 1.0),
            OutOfMemoryError(2_000, 1_000, "HASH_JOIN build"),
            AdmissionError(500, 1_000, 800),
        ):
            back = error_from_wire(error_to_wire(exc))
            assert type(back) is type(exc)
            assert str(back) == str(exc)
        oom = error_from_wire(error_to_wire(OutOfMemoryError(9, 5, "x")))
        assert (oom.rows, oom.budget, oom.label) == (9, 5, "x")

    def test_query_timeout_roundtrips(self, served):
        db, server = served
        db.catalog.table("People").extend(
            [(i, f"n{i}", i % 50) for i in range(10, 4000)]
        )
        with Client(server.address) as client:
            with pytest.raises(QueryTimeout) as info:
                client.execute(SLOW_SQL, timeout=0.02)
            assert info.value.deadline == 0.02
            assert info.value.elapsed >= 0.02
            assert getattr(info.value, "wire_code", None) == "QUERY_TIMEOUT"

    def test_out_of_memory_roundtrips(self, served):
        db, server = served
        db.catalog.table("People").extend(
            [(i, f"n{i}", i % 5) for i in range(10, 2000)]
        )
        db.config.memory_budget_rows = 100
        with Client(server.address) as client:
            with pytest.raises(OutOfMemoryError) as info:
                client.execute(SLOW_SQL)
            assert info.value.budget == 100
            assert info.value.rows > 100

    def test_admission_error_roundtrips(self, served):
        db, server = served
        db.governor = MemoryGovernor(total_rows=10, admission_timeout=0.0)
        db.config.memory_budget_rows = 100  # can never fit
        with Client(server.address) as client:
            with pytest.raises(AdmissionError) as info:
                client.execute("SELECT name FROM People")
            assert (info.value.requested, info.value.total) == (100, 10)

    def test_parameter_error_roundtrips(self, served):
        db, server = served
        with Client(server.address) as client:
            with pytest.raises(ParameterError):
                client.execute(
                    "SELECT name FROM People WHERE age = ?", params=[1, 2]
                )
            stmt = client.prepare("SELECT name FROM People WHERE age = ?")
            with pytest.raises(ParameterError):
                stmt.execute([1, 2, 3])
            stmt.close()

    def test_error_note_carries_query_text(self, served):
        db, server = served
        with Client(server.address) as client:
            with pytest.raises(Exception) as info:
                client.execute("SELECT nope FROM People")
            notes = getattr(info.value, "__notes__", [])
            assert any("SELECT nope FROM People" in n for n in notes)


# ---------------------------------------------------------------------- #
# adversarial lifecycle
# ---------------------------------------------------------------------- #


class TestAdversarialLifecycle:
    def test_mid_stream_disconnect_releases_resources(self):
        governor = MemoryGovernor(total_rows=1_000_000, admission_timeout=5.0)
        db = _people_db(n=4000)
        db.governor = governor
        server = Server(db)
        try:
            client = Client(server.address)
            pending = client.submit(SLOW_SQL)
            assert not pending.done() or True  # query is (likely) in flight
            # Rude disconnect: no close frame, just a dead socket.
            # (shutdown, not close: with the reader thread blocked in recv
            # on this fd, the kernel defers the FIN past close() until the
            # syscall returns — shutdown pushes it out immediately.)
            client._sock.shutdown(socket.SHUT_RDWR)
            client._sock.close()
            # The server notices EOF, cancels the query, closes the
            # session, and releases every lease.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and server.connections:
                time.sleep(0.02)
            assert server.connections == 0
            assert governor.active_leases == 0
            assert governor.leased_rows == 0
        finally:
            server.close()
            db.close()
            assert_no_repro_threads()

    def test_cancel_racing_completion_is_benign(self, served):
        db, server = served
        with Client(server.address) as client:
            # Tiny queries: cancel lands before, during, or after each one.
            for i in range(20):
                pending = client.submit(
                    "SELECT name FROM People WHERE age = ?", params=[28]
                )
                pending.cancel("race probe")
                try:
                    rows = pending.result(timeout=30).rows
                    assert sorted(rows) == [("Bob",), ("Dee",)]
                except QueryCancelled:
                    pass  # the cancel won the race — equally correct

    def test_server_close_with_in_flight_queries(self):
        db = _people_db(n=4000, workers=2)
        server = Server(db)
        clients = [Client(server.address) for _ in range(3)]
        futures = [c.submit(SLOW_SQL) for c in clients]
        server.close()  # must not hang: cancels, drains, joins
        db.close()
        for f in futures:
            with pytest.raises(
                (QueryCancelled, SessionClosed, ConnectionError)
            ):
                f.result(timeout=10)
        for c in clients:
            c.close()
        assert_no_repro_threads()

    def test_chunked_fetch_streams_large_results(self, served):
        db, server = served
        db.catalog.table("People").extend(
            [(i, f"n{i}", i % 50) for i in range(10, 5000)]
        )
        client = Client(server.address, fetch_rows=128)
        try:
            r = client.execute("SELECT id FROM People")
            assert len(r.rows) == 4994  # 4 seed rows + 4990 appended
            assert r.rows_produced >= len(r.rows)
        finally:
            client.close()

    def test_eight_sessions_four_in_flight_pool_of_four(self):
        # The acceptance-criteria shape: 8 client sessions x 4 in-flight
        # queries on a worker pool of 4 — everything completes, the pool
        # never exceeds its bound, and close() leaks nothing.
        governor = MemoryGovernor(total_rows=10_000_000, admission_timeout=30.0)
        db = _people_db(n=2000, workers=4)
        db.governor = governor
        server = Server(db)
        try:
            clients = [Client(server.address) for _ in range(8)]
            futures = [
                c.submit(
                    "SELECT COUNT(*) AS n FROM People WHERE age = ?",
                    params=[i % 50],
                )
                for c in clients
                for i in range(4)
            ]
            for f in futures:
                assert f.result(timeout=60).rows[0][0] == 40
            assert db.pool.worker_count <= 4
            for c in clients:
                c.close()
            assert governor.active_leases == 0
            assert governor.leased_rows == 0
        finally:
            server.close()
            db.close()
            assert_no_repro_threads()

    def test_no_spill_files_leak_through_the_wire(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "64")
        db = _people_db(n=3000)
        server = Server(db)
        try:
            with Client(server.address) as client:
                r = client.execute("SELECT id, name FROM People ORDER BY name, id")
                assert len(r.rows) == 3000
        finally:
            server.close()
            db.close()
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []

    def test_concurrent_requests_one_connection(self, served):
        # Many caller threads multiplexed over one client socket: seq
        # demultiplexing must never cross-deliver replies.
        db, server = served
        client = Client(server.address)
        errors: list[str] = []

        def worker(worker_id: int):
            want = {
                28: [("Bob",), ("Dee",)],
                34: [("Ann",)],
                41: [("Cid",)],
            }
            for i in range(10):
                age = (28, 34, 41)[(worker_id + i) % 3]
                got = sorted(
                    client.execute(
                        "SELECT name FROM People WHERE age = ?", params=[age]
                    ).rows
                )
                if got != want[age]:
                    errors.append(f"worker {worker_id}: {age} -> {got}")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        client.close()
        assert errors == []

    def test_prepared_statement_over_wire_epoch_bump(self, served):
        db, server = served
        with Client(server.address) as client:
            stmt = client.prepare("SELECT name FROM People WHERE age = ?")
            assert sorted(stmt.execute([28]).rows) == [("Bob",), ("Dee",)]
            db.catalog.analyze()  # epoch bump behind the statement's back
            assert sorted(stmt.execute([28]).rows) == [("Bob",), ("Dee",)]
            stmt.close()
            with pytest.raises(SessionClosed):
                stmt.execute([28])
