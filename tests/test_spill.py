"""Spill-to-disk out-of-core execution.

Four concerns:

* **Arming** — ``resolve_spill`` semantics (explicit value wins, then the
  ``REPRO_SPILL_DIR`` / ``REPRO_SPILL_THRESHOLD`` environment; ``False``
  always disarms; malformed env raises), and the zero-cost contract: an
  armed-but-idle query touches the filesystem not at all.
* **Serializer** — typed columns (``array.array``, ndarray, dictionary
  codes), NULL/NaN cells, and the identity ``MISSING`` sentinel all
  round-trip loss-free through spill frames.
* **Parity** — spilled execution produces the same rows as in-memory
  across storage backends × parallelism × protocol, including NULL/NaN
  grouping keys; external sort reproduces the in-memory order *exactly*.
* **Lifecycle** — the acceptance bar: previously-OOMing plans complete
  under a quarter of their working set with peak tracked rows within the
  budget, and no temp files survive success, failure, cancellation, or an
  abandoned ``execute_iter`` (plus the ``atexit`` sweep for crash paths).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.errors import InjectedFault, OutOfMemoryError, QueryCancelled
from repro.exec import (
    ExecutionContext,
    Fault,
    FaultInjector,
    QueryHandle,
    SpillConfig,
    SpillManager,
    execute_plan,
    numpy_available,
    resolve_spill,
    set_numpy_enabled,
)
from repro.exec.grouping import MISSING, NAN
from repro.exec.spill import (
    PartitionWriter,
    decode_batch,
    encode_batch,
    spill_hash,
)
from repro.exec.vector import ColumnarBatch, DictVector
from repro.graph.index import build_graph_index
from repro.relational.column import set_storage_backend
from repro.relational.expr import col
from repro.relational.logical import AggregateSpec
from repro.relational.physical import (
    AggregateOp,
    DistinctOp,
    HashJoin,
    SeqScan,
    SortOp,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.systems import make_system
from repro.workloads.ldbc import LdbcParams, generate_ldbc
from repro.workloads.ldbc.queries import qc_queries
from tests.test_lifecycle import assert_no_repro_threads
from tests.test_parallel_exec import _nan_safe, make_table

PARALLELISM = 4


@pytest.fixture(scope="module")
def tables():
    return make_table(4_000, "l"), make_table(1_000, "r")


@pytest.fixture(scope="module")
def ldbc():
    catalog, mapping = generate_ldbc(LdbcParams(persons=80, forums=10, seed=3))
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog


def _pipeline(tables):
    """All four spilling breakers in one plan: hash-join build, grouped
    aggregation (NaN keys via ``l.f``), DISTINCT, and ORDER BY."""
    left, right = tables
    join = HashJoin(SeqScan(left, "l"), SeqScan(right, "r"), ["l.v"], ["r.v"])
    agg = AggregateOp(
        join,
        [(col("l.v"), "v"), (col("l.f"), "f")],
        [AggregateSpec("COUNT", None, "c"), AggregateSpec("SUM", col("r.id"), "s")],
    )
    return SortOp(DistinctOp(agg), [(col("v"), True), (col("s"), False)])


def _empty_dir(path) -> bool:
    return not any(os.scandir(path))


# --------------------------------------------------------------------- #
# arming / resolve_spill
# --------------------------------------------------------------------- #


def test_resolve_spill_defaults_disarmed(monkeypatch):
    monkeypatch.delenv("REPRO_SPILL_DIR", raising=False)
    monkeypatch.delenv("REPRO_SPILL_THRESHOLD", raising=False)
    assert resolve_spill(None) is None
    assert resolve_spill(False) is None


def test_resolve_spill_env(monkeypatch):
    monkeypatch.setenv("REPRO_SPILL_DIR", "/tmp/spill-here")
    monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "500")
    config = resolve_spill(None)
    assert config == SpillConfig(directory="/tmp/spill-here", threshold_rows=500)
    # False disarms regardless of the environment.
    assert resolve_spill(False) is None


def test_resolve_spill_explicit_values():
    assert resolve_spill(True) == SpillConfig()
    assert resolve_spill("/somewhere") == SpillConfig(directory="/somewhere")
    assert resolve_spill(1000) == SpillConfig(threshold_rows=1000)
    config = SpillConfig(directory="/d", threshold_rows=7)
    assert resolve_spill(config) is config
    with pytest.raises(TypeError):
        resolve_spill(3.14)


def test_resolve_spill_malformed_env_raises(monkeypatch):
    monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "a-lot")
    with pytest.raises(ValueError):
        resolve_spill(None)
    monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "0")
    with pytest.raises(ValueError):
        resolve_spill(None)


def test_spill_limit_combines_threshold_and_budget():
    ctx = ExecutionContext(memory_budget_rows=1_000)
    assert ctx.spill_limit() is None  # disarmed
    ctx.spill = SpillManager(SpillConfig(threshold_rows=300)).bind(ctx)
    try:
        assert ctx.spill_limit() == 300
        ctx.memory_budget_rows = 200
        assert ctx.spill_limit() == 200  # min(threshold, budget)
        ctx.memory_budget_rows = None
        assert ctx.spill_limit() == 300
    finally:
        ctx.spill.close()


def test_armed_idle_is_identical_and_touches_no_disk(tables, tmp_path):
    plan = _pipeline(tables)
    config = SpillConfig(directory=str(tmp_path), threshold_rows=10**9)
    # Row protocol: armed-but-idle is byte-identical, order included.
    baseline = execute_plan(plan, columnar=False, spill=False)
    armed = execute_plan(plan, columnar=False, spill=config)
    assert _nan_safe(armed.rows) == _nan_safe(baseline.rows)
    assert armed.rows_produced == baseline.rows_produced
    assert armed.peak_buffered_rows == baseline.peak_buffered_rows
    # Columnar: same rows; intermediate batch boundaries differ (the grace
    # join streams through the row boundary), which legally reorders
    # aggregate output exactly as differing batch sizes already do.
    baseline = execute_plan(plan, spill=False)
    armed = execute_plan(plan, spill=config)
    assert _nan_safe(armed.sorted_rows()) == _nan_safe(baseline.sorted_rows())
    assert armed.rows_produced == baseline.rows_produced
    # The per-query directory is lazy: never spilling = never created.
    assert _empty_dir(tmp_path)


def test_spill_hash_salting_actually_splits():
    # Re-salting must not map an oversized partition onto itself wholesale
    # (that would make the grace-join recursion a no-op).
    same = [k for k in range(1_000) if spill_hash(k) % 16 == 3]
    resalted = {spill_hash(k, 1) % 16 for k in same}
    assert len(resalted) > 1


# --------------------------------------------------------------------- #
# serializer round-trips
# --------------------------------------------------------------------- #


def test_encode_batch_round_trips_typed_columns():
    from array import array

    columns = [
        array("q", [1, 2, 3]),
        [1.5, NAN, None],
        DictVector(array("q", [0, 1, 0]), ["a", "b"], {"a": 0, "b": 1}),
    ]
    batch = ColumnarBatch(columns, 3)
    decoded = decode_batch(encode_batch(batch))
    assert isinstance(decoded.columns[0], array)
    assert decoded.columns[0].typecode == "q"
    assert isinstance(decoded.columns[2], DictVector)
    assert list(decoded.columns[2].values) == ["a", "b"]
    assert _nan_safe(decoded.to_rows()) == _nan_safe(batch.to_rows())


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_encode_batch_round_trips_ndarray():
    import numpy as np

    batch = ColumnarBatch([np.array([1, 2, 3]), np.array([1.0, float("nan"), 3.0])], 3)
    decoded = decode_batch(encode_batch(batch))
    assert decoded.columns[0].dtype == np.int64
    assert _nan_safe(decoded.to_rows()) == _nan_safe(batch.to_rows())


def test_spill_file_frames_round_trip(tmp_path):
    manager = SpillManager(SpillConfig(directory=str(tmp_path)))
    try:
        f = manager.create_file("t")
        rows = [(i, float(i)) for i in range(700)]
        f.append_rows(rows[:500])
        f.append_rows(rows[500:])
        assert f.rows_written == 700
        back = [row for frame in f.read_rows() for row in frame]
        assert back == rows
        assert manager.files_created == 1
        assert manager.bytes_written > 0

        b = manager.create_file("b")
        batch = ColumnarBatch.from_rows([(1, "x"), (2, "y")])
        b.append_batch(batch)
        assert [cb.to_rows() for cb in b.read_batches()] == [[(1, "x"), (2, "y")]]
        # Batch frames decode through the row boundary too.
        assert [frame for frame in b.read_rows()] == [[(1, "x"), (2, "y")]]
    finally:
        manager.close()
    assert _empty_dir(tmp_path)


def test_state_frames_preserve_missing_identity(tmp_path):
    manager = SpillManager(SpillConfig(directory=str(tmp_path)))
    try:
        f = manager.create_file("agg")
        f.append_state([(1,), (2,)], [[MISSING, 5.0], [3, MISSING]])
        ((keys, cells),) = list(f.read_states())
        assert keys == [(1,), (2,)]
        # Identity, not equality: MIN/MAX merges test `is MISSING`.
        assert cells[0][0] is MISSING and cells[1][1] is MISSING
        assert cells[0][1] == 5.0 and cells[1][0] == 3
    finally:
        manager.close()


def test_partition_writer_stages_and_drains(tmp_path):
    manager = SpillManager(SpillConfig(directory=str(tmp_path)))
    try:
        writer = PartitionWriter(manager, "p0")
        for i in range(10):
            writer.append((i,))
        # Under the staging threshold: no file allocated yet.
        assert manager.files_created == 0 and writer.rows == 10
        writer.extend([(i,) for i in range(10, 600)])
        assert manager.files_created == 1  # flushed past WRITE_BUFFER_ROWS
        drained = [item for frame in writer.drain() for item in frame]
        assert drained == [(i,) for i in range(600)]
        writer.delete()
        assert manager.live_files() == 0
    finally:
        manager.close()


# --------------------------------------------------------------------- #
# parity: spilled == in-memory
# --------------------------------------------------------------------- #


@pytest.fixture(params=["dict", "numpy", "array", "list"])
def storage(request):
    mode = request.param
    if mode == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    set_numpy_enabled(mode == "numpy")
    if mode == "dict":
        set_storage_backend("dict")
    elif mode == "list":
        set_storage_backend("list")
    else:
        set_storage_backend("typed")
    yield mode
    set_numpy_enabled(None)
    set_storage_backend(None)


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
@pytest.mark.parametrize("columnar", [True, False])
def test_spilled_execution_matches_in_memory(storage, parallelism, columnar):
    # Fresh tables per storage mode so columns use the active backend.
    tables = make_table(4_000, "l"), make_table(1_000, "r")
    plan = _pipeline(tables)
    baseline = execute_plan(
        plan, columnar=columnar, parallelism=parallelism, spill=False
    )
    spilled = execute_plan(
        plan,
        columnar=columnar,
        parallelism=parallelism,
        spill=SpillConfig(threshold_rows=150),
    )
    # Row sets are identical; spilled breakers legally emit in partition
    # order (the exact-order guarantee of ORDER BY itself is pinned by
    # test_external_sort_reproduces_exact_order on an order-stable input).
    assert _nan_safe(spilled.sorted_rows()) == _nan_safe(baseline.sorted_rows())
    assert len(spilled) == len(baseline)
    assert spilled.peak_buffered_rows <= baseline.peak_buffered_rows


def test_spilled_grouping_handles_null_and_nan_keys():
    schema = TableSchema(
        "t", [Column("k", DataType.FLOAT), Column("v", DataType.INT)]
    )
    table = Table(schema)
    n = 2_000
    keys = [None if i % 7 == 0 else (NAN if i % 5 == 0 else float(i % 40)) for i in range(n)]
    table.extend_columns([keys, list(range(n))], validate=False)
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k")],
        [AggregateSpec("COUNT", None, "c"), AggregateSpec("MIN", col("t.v"), "mn")],
    )
    for columnar in (True, False):
        baseline = execute_plan(plan, columnar=columnar, spill=False)
        spilled = execute_plan(plan, columnar=columnar, spill=SpillConfig(threshold_rows=8))
        assert _nan_safe(spilled.sorted_rows()) == _nan_safe(baseline.sorted_rows())
        # All NaN rows merged into one group even across spill partitions.
        nan_groups = [r for r in spilled.rows if r[0] is not None and r[0] != r[0]]
        assert len(nan_groups) == 1


def test_spilled_distinct_handles_null_and_nan_keys():
    schema = TableSchema(
        "t", [Column("k", DataType.FLOAT), Column("g", DataType.INT)]
    )
    table = Table(schema)
    n = 2_000
    table.extend_columns(
        [
            [None if i % 7 == 0 else (NAN if i % 5 == 0 else float(i % 60)) for i in range(n)],
            [i % 9 for i in range(n)],
        ],
        validate=False,
    )
    plan = DistinctOp(SeqScan(table, "t"))
    for columnar in (True, False):
        baseline = execute_plan(plan, columnar=columnar, spill=False)
        spilled = execute_plan(plan, columnar=columnar, spill=SpillConfig(threshold_rows=16))
        assert _nan_safe(spilled.sorted_rows()) == _nan_safe(baseline.sorted_rows())


@pytest.mark.parametrize(
    "keys",
    [
        [("l.v", True)],  # ~41 tie classes: ties resolve by arrival
        [("l.v", False)],  # DESC wrapping must keep arrival ties too
        [("l.v", True), ("l.id", False)],  # multi-key with DESC component
    ],
    ids=["asc-ties", "desc-ties", "multi-key"],
)
def test_external_sort_reproduces_exact_order(tables, keys):
    left, _ = tables
    plan = SortOp(SeqScan(left, "l"), [(col(n), asc) for n, asc in keys])
    for columnar in (True, False):
        baseline = execute_plan(plan, columnar=columnar, spill=False)
        spilled = execute_plan(
            plan, columnar=columnar, spill=SpillConfig(threshold_rows=128)
        )
        # Many ties on v split across run files: the k-way merge must
        # reproduce the in-memory (stability-defined) order byte for byte.
        # (_nan_safe only because pickled NaN payload cells lose the
        # identity that tuple == relies on; order is asserted exactly.)
        assert _nan_safe(spilled.rows) == _nan_safe(baseline.rows)


def test_external_sort_canonicalizes_nan_keys(tables):
    # NaN is incomparable, so the disarmed in-memory sort's placement of
    # NaN-keyed rows is a timsort artifact.  The external sort instead
    # gives NaN a canonical total order: last among non-null values
    # ascending (first descending), ties by the remaining keys.
    left, _ = tables
    for ascending in (True, False):
        plan = SortOp(
            SeqScan(left, "l"), [(col("l.f"), ascending), (col("l.id"), True)]
        )
        baseline = execute_plan(plan, spill=False)
        spilled = execute_plan(plan, spill=SpillConfig(threshold_rows=128))
        again = execute_plan(plan, spill=SpillConfig(threshold_rows=37))
        # Same rows, and the armed order is deterministic — independent of
        # where the run boundaries fall.
        assert _nan_safe(spilled.sorted_rows()) == _nan_safe(baseline.sorted_rows())
        assert _nan_safe(again.rows) == _nan_safe(spilled.rows)
        fs = [row[2] for row in spilled.rows]
        nan_flags = [v != v for v in fs]
        n_nan = sum(nan_flags)
        assert n_nan > 0
        block = nan_flags[-n_nan:] if ascending else nan_flags[:n_nan]
        assert all(block)  # NaN block is contiguous at the canonical end
        clean = [v for v in fs if v == v]
        assert clean == sorted(clean, reverse=not ascending)
        # Within the NaN block the secondary key (id ASC) decides.
        nan_ids = [row[0] for row, flag in zip(spilled.rows, nan_flags) if flag]
        assert nan_ids == sorted(nan_ids)


# --------------------------------------------------------------------- #
# the acceptance bar: past-the-cliff queries complete under a working set
# --------------------------------------------------------------------- #


def test_oom_trip_points_unchanged_when_disarmed(ldbc):
    budget = 20_000
    system = make_system("relgo_noei", ldbc, "snb", memory_budget_rows=budget)
    assert system.run(qc_queries()["QC3"], query_name="QC3").status == "OOM"


@pytest.mark.parametrize("name", ["relgo_noei", "kuzu"])
def test_oom_queries_complete_under_quarter_working_set(ldbc, tmp_path, name):
    qc3 = qc_queries()["QC3"]
    free = make_system(name, ldbc, "snb")
    unbounded = free.framework.execute(free.optimize(qc3))
    working_set = unbounded.peak_buffered_rows
    assert working_set > 20_000  # the Fig 9 cliff is real at this scale

    budget = max(2_048, working_set // 4)
    armed = make_system(
        name,
        ldbc,
        "snb",
        memory_budget_rows=budget,
        spill=SpillConfig(directory=str(tmp_path)),
    )
    result = armed.framework.execute(armed.optimize(qc3))
    assert _nan_safe(result.sorted_rows()) == _nan_safe(unbounded.sorted_rows())
    assert result.peak_buffered_rows <= budget
    assert _empty_dir(tmp_path)


# --------------------------------------------------------------------- #
# temp-file lifecycle: no survivors on any path
# --------------------------------------------------------------------- #


def _spilling_config(tmp_path, threshold=150):
    return SpillConfig(directory=str(tmp_path), threshold_rows=threshold)


def test_success_path_reaps_spill_directory(tables, tmp_path):
    plan = _pipeline(tables)
    result = execute_plan(plan, spill=_spilling_config(tmp_path))
    assert len(result) > 0
    assert _empty_dir(tmp_path)


def test_failure_path_reaps_spill_directory(tables, tmp_path):
    plan = _pipeline(tables)
    faults = FaultInjector([Fault(kind="error", site="emit", after=3)])
    with pytest.raises(InjectedFault):
        execute_plan(plan, faults=faults, spill=_spilling_config(tmp_path))
    assert _empty_dir(tmp_path)
    assert_no_repro_threads()


def test_cancelled_query_reaps_spill_directory(tables, tmp_path):
    plan = _pipeline(tables)
    handle = QueryHandle()
    faults = FaultInjector([Fault(kind="cancel", site="spill", after=20)])
    with pytest.raises(QueryCancelled):
        execute_plan(
            plan, handle=handle, faults=faults, spill=_spilling_config(tmp_path)
        )
    assert _empty_dir(tmp_path)
    assert_no_repro_threads()


def test_oom_mid_spill_reaps_spill_directory(tables, tmp_path):
    # An OOM raised while spill files are live on disk (injected at the
    # spill site itself) must still unwind through the reaping cascade.
    plan = _pipeline(tables)
    faults = FaultInjector([Fault(kind="oom", site="spill", after=5)])
    with pytest.raises(OutOfMemoryError):
        execute_plan(plan, faults=faults, spill=_spilling_config(tmp_path))
    assert _empty_dir(tmp_path)
    assert_no_repro_threads()


def test_abandoned_execute_iter_reaps_spill_directory(tmp_path):
    from repro.core.sqlpgq import parse_and_bind
    from repro.graph.rgmapping import RGMapping
    from repro.relational.catalog import Catalog

    catalog = Catalog()
    catalog.create_table(
        TableSchema(
            "t",
            [Column("id", DataType.INT), Column("v", DataType.INT)],
            primary_key="id",
        ),
        rows=[(i, (i * 13) % 101) for i in range(5_000)],
    )
    # The framework wants a property graph; a single-vertex mapping is
    # enough for a purely relational query.
    mapping = RGMapping("g", catalog)
    mapping.add_vertex("t")
    catalog.register_graph(mapping)
    catalog.analyze()
    system = make_system(
        "duckdb", catalog, spill=_spilling_config(tmp_path, threshold=100)
    )
    query = parse_and_bind("SELECT t.id, t.v FROM t ORDER BY t.v", catalog)
    optimized = system.optimize(query)
    iterator = system.framework.execute_iter(optimized)
    first = next(iterator)
    assert first
    # The external sort's run files are live while batches stream.
    assert not _empty_dir(tmp_path)
    iterator.close()  # abandon mid-stream
    assert _empty_dir(tmp_path)
    assert_no_repro_threads()


def test_atexit_sweep_reaps_unclosed_managers(tmp_path):
    # A crash path that never reaches close(): the interpreter-exit sweep
    # must still remove the directory.
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    code = (
        "import sys\n"
        f"sys.path.insert(0, {src!r})\n"
        "from repro.exec.spill import SpillConfig, SpillManager\n"
        f"m = SpillManager(SpillConfig(directory={str(tmp_path)!r}))\n"
        "f = m.create_file('orphan')\n"
        "f.append_rows([(1,), (2,)])\n"
        "print(m.directory)\n"
        # exits without m.close(): only the atexit sweep stands between
        # this file and a leak
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, timeout=60
    )
    assert proc.returncode == 0, proc.stderr
    orphan_dir = proc.stdout.strip()
    assert orphan_dir.startswith(str(tmp_path))
    assert not os.path.exists(orphan_dir)
    assert _empty_dir(tmp_path)
