"""End-to-end SPJM optimization: every system config must return the same
rows as the reference matcher + manual relational post-processing."""

from __future__ import annotations

import pytest

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery
from repro.graph.pattern import PatternGraph
from repro.relational.expr import col, eq, lit


def example1_query() -> SPJMQuery:
    """The paper's Example 1: friends of Tom who like the same message, and
    the place the friend... (the paper projects p1's place; we follow Fig 1:
    join Place on p1.place_id, filter p1.name = 'Tom', return p2 + place)."""
    pattern = (
        PatternGraph.builder()
        .vertex("p1", "Person")
        .vertex("p2", "Person")
        .vertex("m", "Message")
        .edge("p1", "m", "Likes", name="l1")
        .edge("p2", "m", "Likes", name="l2")
        .edge("p1", "p2", "Knows", name="k")
        .build()
    )
    clause = GraphTableClause(
        graph_name="G",
        pattern=pattern,
        columns=[
            MatchColumn("p1", "name", "p1_name"),
            MatchColumn("p1", "place_id", "p1_place_id"),
            MatchColumn("p2", "name", "p2_name"),
        ],
        alias="g",
    )
    return SPJMQuery(
        graph_table=clause,
        relations=[("Place", "p")],
        predicates=[
            eq(col("g.p1_place_id"), col("p.id")),
            eq(col("g.p1_name"), lit("Tom")),
        ],
        projections=[(col("g.p2_name"), "p2_name"), (col("p.name"), "place_name")],
    )


ALL_CONFIGS = {
    "relgo": RelGoConfig(),
    "relgo_norule": RelGoConfig(enable_rules=False),
    "relgo_noei": RelGoConfig(enable_expand_intersect=False),
    "relgo_hash": RelGoConfig(use_graph_index=False),
    "duckdb": RelGoConfig(graph_aware=False, use_graph_index=False),
    "graindb": RelGoConfig(graph_aware=False, use_graph_index=True),
    "umbra": RelGoConfig(graph_aware=False, use_graph_index=True, histograms=True),
    "calcite": RelGoConfig(
        graph_aware=False, use_graph_index=False, join_enumeration="exhaustive"
    ),
    "relgo_loworder": RelGoConfig(use_glogue=False),
}

# Fig 2 ground truth: Tom knows Bob, both like m1, Tom lives in Germany.
EXPECTED = [("Bob", "Germany")]


@pytest.mark.parametrize("name", sorted(ALL_CONFIGS))
def test_example1_all_systems(fig2, name):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", ALL_CONFIGS[name])
    framework.prepare()
    result, optimized = framework.run(example1_query())
    assert result.sorted_rows() == EXPECTED, f"{name} produced {result.rows}"
    assert optimized.optimization_time >= 0


def test_filter_into_match_fired(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    optimized = framework.optimize(example1_query())
    assert optimized.rule_report is not None
    assert optimized.rule_report.pushed_constraints == 1
    # The constraint must appear in the SCAN_GRAPH_TABLE subtree.
    assert "Tom" in optimized.explain()


def test_trim_and_fuse_trims_edges(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    optimized = framework.optimize(example1_query())
    report = optimized.rule_report
    assert report is not None
    # No edge attribute is projected: all three edge vars are trimmed.
    assert sorted(report.trimmed_edge_vars) == ["k", "l1", "l2"]
    explained = optimized.explain()
    assert "EXPAND_EDGE" not in explained  # fused


def test_norule_keeps_unfused_operators(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", RelGoConfig(enable_rules=False))
    framework.prepare()
    optimized = framework.optimize(example1_query())
    explained = optimized.explain()
    assert "EXPAND_EDGE" in explained or "PATTERN_HASH_JOIN" in explained


def test_graph_agnostic_plan_has_no_graph_operators(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(
        catalog, "G", RelGoConfig(graph_aware=False, use_graph_index=False)
    )
    framework.prepare()
    optimized = framework.optimize(example1_query())
    explained = optimized.explain()
    assert "SCAN_GRAPH_TABLE" not in explained
    assert "EXPAND" not in explained
    assert "HASH_JOIN" in explained


def test_graindb_plan_uses_predefined_joins(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(
        catalog, "G", RelGoConfig(graph_aware=False, use_graph_index=True)
    )
    framework.prepare()
    optimized = framework.optimize(example1_query())
    explained = optimized.explain()
    assert "ROWID_JOIN" in explained or "CSR_JOIN" in explained


def test_pure_match_query(fig2):
    catalog, _, _ = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .edge("a", "b", "Knows", name="k")
        .build()
    )
    query = SPJMQuery(
        graph_table=GraphTableClause(
            "G",
            pattern,
            [MatchColumn("a", "name", "a_name"), MatchColumn("b", "name", "b_name")],
        )
    )
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    result, _ = framework.run(query)
    assert sorted(result.rows) == [
        ("Bob", "David"),
        ("Bob", "Tom"),
        ("David", "Bob"),
        ("Tom", "Bob"),
    ]


def test_aggregate_over_match(fig2):
    from repro.relational.logical import AggregateSpec

    catalog, _, _ = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("p", "Person")
        .vertex("m", "Message")
        .edge("p", "m", "Likes", name="l")
        .build()
    )
    query = SPJMQuery(
        graph_table=GraphTableClause(
            "G", pattern, [MatchColumn("p", "name", "p_name")]
        ),
        aggregates=[AggregateSpec("COUNT", None, "likes")],
    )
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    result, _ = framework.run(query)
    assert result.rows == [(4,)]
