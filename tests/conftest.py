"""Shared fixtures.

``fig2_catalog`` reproduces the running example of the paper's Figure 2:
Person / Message / Likes / Knows / Place relations, the RGMapping onto the
property graph G, and the graph index.  Ground-truth matching results on
this graph are known by hand, so most correctness tests are phrased
against it.
"""

from __future__ import annotations

import pytest

from repro.graph.index import build_graph_index
from repro.graph.rgmapping import RGMapping
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, ForeignKey, TableSchema
from repro.relational.types import DataType


def build_fig2_catalog() -> tuple[Catalog, RGMapping]:
    catalog = Catalog()
    catalog.create_table(
        TableSchema(
            "Person",
            [
                Column("person_id", DataType.INT),
                Column("name", DataType.STRING),
                Column("place_id", DataType.INT),
            ],
            primary_key="person_id",
            foreign_keys=[ForeignKey("place_id", "Place", "id")],
        ),
        rows=[
            (1, "Tom", 101),
            (2, "Bob", 102),
            (3, "David", 103),
        ],
    )
    catalog.create_table(
        TableSchema(
            "Message",
            [Column("message_id", DataType.INT), Column("content", DataType.STRING)],
            primary_key="message_id",
        ),
        rows=[(11, "m1-content"), (12, "m2-content")],
    )
    catalog.create_table(
        TableSchema(
            "Likes",
            [
                Column("likes_id", DataType.INT),
                Column("pid", DataType.INT),
                Column("mid", DataType.INT),
                Column("date", DataType.DATE),
            ],
            primary_key="likes_id",
            foreign_keys=[
                ForeignKey("pid", "Person", "person_id"),
                ForeignKey("mid", "Message", "message_id"),
            ],
        ),
        rows=[
            (1, 1, 11, "2024-03-31"),
            (2, 2, 11, "2024-03-28"),
            (3, 2, 12, "2024-03-20"),
            (4, 3, 12, "2024-03-21"),
        ],
    )
    catalog.create_table(
        TableSchema(
            "Knows",
            [
                Column("knows_id", DataType.INT),
                Column("pid1", DataType.INT),
                Column("pid2", DataType.INT),
                Column("date", DataType.DATE),
            ],
            primary_key="knows_id",
            foreign_keys=[
                ForeignKey("pid1", "Person", "person_id"),
                ForeignKey("pid2", "Person", "person_id"),
            ],
        ),
        rows=[
            (1, 1, 2, "2023-01-15"),
            (2, 2, 1, "2023-01-15"),
            (3, 2, 3, "2023-02-18"),
            (4, 3, 2, "2023-02-18"),
        ],
    )
    catalog.create_table(
        TableSchema(
            "Place",
            [Column("id", DataType.INT), Column("name", DataType.STRING)],
            primary_key="id",
        ),
        rows=[(101, "Germany"), (102, "Denmark"), (103, "China")],
    )
    mapping = RGMapping("G", catalog)
    mapping.add_vertex("Person")
    mapping.add_vertex("Message")
    mapping.add_edge("Likes", source=("Person", "pid"), target=("Message", "mid"))
    mapping.add_edge("Knows", source=("Person", "pid1"), target=("Person", "pid2"))
    catalog.register_graph(mapping)
    catalog.analyze()
    return catalog, mapping


@pytest.fixture(scope="session")
def fig2():
    catalog, mapping = build_fig2_catalog()
    index = build_graph_index(mapping)
    catalog.register_graph_index(index)
    return catalog, mapping, index
