"""GLogue statistics and the cost model's cardinality estimates."""

from __future__ import annotations

import pytest

from repro.graph.cost import CardinalityEstimator
from repro.graph.glogue import GLogue
from repro.graph.index import build_graph_index
from repro.graph.matching import count_matches
from repro.graph.pattern import PatternGraph
from repro.relational.expr import col, eq, lit
from repro.workloads.ldbc import LdbcParams, generate_ldbc


@pytest.fixture(scope="module")
def snb():
    catalog, mapping = generate_ldbc(LdbcParams(persons=120, seed=5))
    index = build_graph_index(mapping)
    catalog.register_graph_index(index)
    return catalog, mapping, index


def knows_path(k):
    b = PatternGraph.builder()
    for i in range(k + 1):
        b.vertex(f"p{i}", "person")
    for i in range(k):
        b.edge(f"p{i}", f"p{i + 1}", "knows")
    return b.build()


def triangle():
    return (
        PatternGraph.builder()
        .vertex("a", "person")
        .vertex("b", "person")
        .vertex("c", "person")
        .edge("a", "b", "knows")
        .edge("b", "c", "knows")
        .edge("a", "c", "knows")
        .build()
    )


def test_single_counts_exact(snb):
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index)
    assert glogue.vertex_count("person") == 120
    assert glogue.edge_count("knows") == catalog.table("knows").num_rows


def test_two_path_count_exact(snb):
    """2-edge patterns are computed exactly from CSR degrees."""
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index)
    wedge = knows_path(2)
    assert glogue.pattern_count(wedge) == count_matches(mapping, index, wedge)


def test_triangle_estimate_full_sample_exact(snb):
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index, sample_ratio=1.0)
    assert glogue.pattern_count(triangle()) == count_matches(
        mapping, index, triangle()
    )


def test_triangle_sampled_estimate_reasonable(snb):
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index, sample_ratio=0.4, min_sample=32)
    actual = count_matches(mapping, index, triangle())
    estimate = glogue.pattern_count(triangle())
    assert actual / 4 <= estimate <= actual * 4


def test_glogue_beats_independence_on_triangles(snb):
    """High-order statistics must estimate the triangle better than the
    independence fallback (the whole point of GLogue, Sec 4.3)."""
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index, sample_ratio=1.0)
    high = CardinalityEstimator(glogue, catalog, use_glogue=True)
    low = CardinalityEstimator(glogue, catalog, use_glogue=False)
    actual = count_matches(mapping, index, triangle())
    err_high = abs(high.estimate(triangle()) - actual)
    err_low = abs(low.estimate(triangle()) - actual)
    assert err_high <= err_low


def test_larger_pattern_estimates_positive(snb):
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index, sample_ratio=0.5)
    estimator = CardinalityEstimator(glogue, catalog)
    for k in (3, 4, 5):
        estimate = estimator.estimate(knows_path(k))
        assert estimate > 0


def test_constraint_selectivity_shrinks_estimate(snb):
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index, sample_ratio=0.5)
    estimator = CardinalityEstimator(glogue, catalog)
    plain = knows_path(2)
    constrained = plain.with_vertex_constraint(
        "p0", eq(col("first_name"), lit("Jan"))
    )
    assert estimator.estimate(constrained) < estimator.estimate(plain)


def test_memoization_by_structure(snb):
    """Isomorphic patterns with different names share one GLogue entry."""
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index, sample_ratio=1.0)
    a = knows_path(2)
    renamed = (
        PatternGraph.builder()
        .vertex("x", "person")
        .vertex("y", "person")
        .vertex("z", "person")
        .edge("x", "y", "knows")
        .edge("y", "z", "knows")
        .build()
    )
    glogue.pattern_count(a)
    cached = len(glogue._cache)
    glogue.pattern_count(renamed)
    assert len(glogue._cache) == cached


def test_closing_probability_bounds(snb):
    catalog, mapping, index = snb
    glogue = GLogue(mapping, index)
    p = glogue.closing_probability("person", "knows", "person")
    assert 0.0 < p < 1.0
