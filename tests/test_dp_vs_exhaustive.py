"""DPsub must find the same optimal cost as full enumeration — the classic
dynamic-programming optimality invariant, checked on random join graphs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.catalog import Catalog
from repro.relational.optimizer.cardinality import CardinalityModel
from repro.relational.optimizer.dp import JoinProblem, dp_order, greedy_order
from repro.relational.optimizer.volcano import ExhaustiveEnumerator
from repro.relational.logical import LogicalScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType


@st.composite
def join_problems(draw):
    """Random connected join problems over 2..6 relations."""
    n = draw(st.integers(2, 6))
    catalog = Catalog()
    leaves = []
    aliases = []
    for i in range(n):
        rows = draw(st.integers(1, 500))
        name = f"t{i}"
        catalog.create_table(
            TableSchema(name, [Column("k", DataType.INT)]),
            rows=[(j % max(rows // 3, 1),) for j in range(rows)],
        )
        leaves.append(LogicalScan(name, f"a{i}", ["k"]))
        aliases.append(frozenset({f"a{i}"}))
    edges = {}
    # Spanning tree keeps it connected; extra random edges allowed.
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        edges[frozenset({j, i})] = [(f"a{j}.k", f"a{i}.k")]
    for _ in range(draw(st.integers(0, 2))):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j:
            edges.setdefault(frozenset({i, j}), [(f"a{min(i,j)}.k", f"a{max(i,j)}.k")])
    return JoinProblem(
        leaves=leaves,
        leaf_aliases=aliases,
        edges=edges,
        card_model=CardinalityModel(catalog),
    )


@settings(max_examples=40, deadline=None)
@given(join_problems())
def test_dp_matches_exhaustive_optimum(problem):
    dp_tree = dp_order(problem)
    exhaustive = ExhaustiveEnumerator(problem).best_plan_allow_cross()
    assert dp_tree.cost <= exhaustive.cost * (1 + 1e-9)
    assert exhaustive.cost <= dp_tree.cost * (1 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(join_problems())
def test_greedy_never_beats_dp(problem):
    dp_tree = dp_order(problem)
    greedy_tree = greedy_order(problem)
    assert greedy_tree.cost >= dp_tree.cost * (1 - 1e-9)
    # Both cover all leaves exactly once.
    assert sorted(greedy_tree.leaf_indices()) == sorted(dp_tree.leaf_indices())


@settings(max_examples=30, deadline=None)
@given(join_problems())
def test_trees_cover_all_relations(problem):
    tree = dp_order(problem)
    assert sorted(tree.leaf_indices()) == list(range(problem.size))
    assert tree.mask == (1 << problem.size) - 1
