"""Fault-injection harness: the matrix and the spec grammar.

The acceptance bar: one injected failure at **every** operator/exchange
boundary of a representative plan × {parallelism 1, 4} × {row, columnar}
must re-raise the injected exception (not a secondary effect), leave no
``repro-*`` worker thread running, and return ``ctx.buffered_rows`` to
zero.  A schedule that is armed but never fires (``after`` past any
realistic hit count — the CI chaos leg's configuration) must not change
results by a byte.
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.errors import (
    InjectedFault,
    OutOfMemoryError,
    QueryCancelled,
    QueryTimeout,
)
from repro.exec import (
    ExecutionContext,
    Fault,
    FaultInjector,
    QueryHandle,
    SpillConfig,
    SpillManager,
    execute_plan,
    parallelize_plan,
    parse_faults,
    plan_boundaries,
    resolve_faults,
)
from repro.relational.expr import col, gt, lit
from repro.relational.logical import AggregateSpec
from repro.relational.physical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoin,
    SeqScan,
    SortOp,
    TopKOp,
)
from repro.systems import make_system
from repro.workloads.ldbc.queries import qc_queries
from tests.test_lifecycle import assert_no_repro_threads
from tests.test_parallel_exec import (  # noqa: F401 — fixture
    _nan_safe,
    ldbc,
    make_table,
)

PARALLELISM = 4

#: Arms the harness without ever firing (the CI chaos leg's schedule).
NEVER = 10**9


@pytest.fixture(scope="module")
def tables():
    return make_table(8_000, "l"), make_table(2_000, "r")


def _relational_plan(tables):
    """Every operator family with a distinct boundary: scan, filter,
    hash-join (build buffer + probe), aggregation fold, top-k fold."""
    left, right = tables
    join = HashJoin(
        FilterOp(SeqScan(left, "l"), gt(col("l.id"), lit(10))),
        SeqScan(right, "r"),
        ["l.v"],
        ["r.v"],
    )
    return TopKOp(join, [(col("l.id"), True), (col("r.id"), True)], 17)


def _aggregate_plan(tables):
    left, _ = tables
    return AggregateOp(
        DistinctOp(SeqScan(left, "l", projected=["v", "f"])),
        [(col("l.v"), "v")],
        [AggregateSpec("COUNT", None, "c")],
    )


def _run_with_fault(plan, fault, parallelism, columnar, handle=None):
    ctx = ExecutionContext(
        parallelism=parallelism, handle=handle, faults=FaultInjector([fault])
    )
    try:
        return ctx, execute_plan(plan, columnar=columnar, ctx=ctx)
    finally:
        assert ctx.buffered_rows == 0
        assert_no_repro_threads()


# --------------------------------------------------------------------- #
# the matrix
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("builder", [_relational_plan, _aggregate_plan])
@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
@pytest.mark.parametrize("columnar", [True, False])
def test_fault_matrix_every_boundary(tables, builder, parallelism, columnar):
    plan = builder(tables)
    executed = (
        parallelize_plan(plan, parallelism, 1024) if parallelism > 1 else plan
    )
    boundaries = plan_boundaries(executed)
    assert boundaries  # the walk found the operators
    if parallelism > 1:
        assert any("EXCHANGE" in b for b in boundaries)
    for label in boundaries:
        fault = Fault(kind="error", label=label)
        with pytest.raises(InjectedFault) as exc_info:
            _run_with_fault(plan, fault, parallelism, columnar)
        assert label in str(exc_info.value), label
    # The RESULT buffer boundary is execute_plan's own.
    with pytest.raises(InjectedFault):
        _run_with_fault(
            plan, Fault(kind="error", site="grow", label="RESULT"),
            parallelism, columnar,
        )


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_fault_matrix_graph_operators(ldbc, parallelism):  # noqa: F811
    # A converged graph query (expand/intersect operators) through the same
    # matrix, columnar protocol (the default engine).
    system = make_system("relgo", ldbc, "snb")
    plan = system.optimize(qc_queries()["QC1"]).physical
    executed = (
        parallelize_plan(plan, parallelism, 1024) if parallelism > 1 else plan
    )
    for label in plan_boundaries(executed):
        with pytest.raises(InjectedFault):
            _run_with_fault(
                plan, Fault(kind="error", label=label), parallelism, True
            )


# --------------------------------------------------------------------- #
# fault kinds beyond error
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_injected_oom_carries_label(tables, parallelism):
    plan = _relational_plan(tables)
    with pytest.raises(OutOfMemoryError) as exc_info:
        _run_with_fault(
            plan, Fault(kind="oom", site="grow", label="build"), parallelism, True
        )
    assert "build" in exc_info.value.label


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_injected_delay_lets_deadline_fire(tables, parallelism):
    # A delay fault stalls batch boundaries past the query deadline: the
    # timeout must surface (the sleep polls the handle) with clean teardown.
    plan = _relational_plan(tables)
    fault = Fault(kind="delay", delay=30.0, times=0)
    with pytest.raises(QueryTimeout):
        _run_with_fault(
            plan, fault, parallelism, True,
            handle=QueryHandle(deadline_seconds=0.05),
        )


def test_injected_cancel_surfaces_as_query_cancelled(tables):
    plan = _relational_plan(tables)
    with pytest.raises(QueryCancelled) as exc_info:
        _run_with_fault(
            plan, Fault(kind="cancel", label="HASH_JOIN"), 1, True,
            handle=QueryHandle(),
        )
    assert "injected cancel" in exc_info.value.reason


def test_cancel_fault_without_handle_is_inert(tables):
    # kind=cancel targets the handle; with none armed there is nothing to
    # cancel and the query completes.
    plan = _relational_plan(tables)
    _, result = _run_with_fault(plan, Fault(kind="cancel"), 1, True)
    assert len(result) == 17


# --------------------------------------------------------------------- #
# disk faults at the spill sites
# --------------------------------------------------------------------- #


def _spilling_plan(tables):
    """Every spilling breaker: grace-join build, aggregation, DISTINCT,
    external sort — all forced out-of-core by a tiny working-set limit."""
    left, right = tables
    join = HashJoin(SeqScan(left, "l"), SeqScan(right, "r"), ["l.v"], ["r.v"])
    agg = AggregateOp(
        join,
        [(col("l.v"), "v")],
        [AggregateSpec("COUNT", None, "c")],
    )
    return SortOp(DistinctOp(agg), [(col("c"), False), (col("v"), True)])


def _run_spilling_with_fault(plan, fault, tmp_path, columnar):
    """Armed spill + armed fault on a caller-owned context.

    Whatever happens, the teardown contract holds: every buffer released,
    every temp file reaped, no worker thread left behind.
    """
    ctx = ExecutionContext(faults=FaultInjector([fault]))
    manager = SpillManager(
        SpillConfig(directory=str(tmp_path), threshold_rows=64)
    ).bind(ctx)
    ctx.spill = manager
    try:
        return execute_plan(plan, columnar=columnar, ctx=ctx)
    finally:
        manager.close()
        assert ctx.buffered_rows == 0
        assert manager.live_files() == 0
        assert not any(os.scandir(tmp_path))
        assert_no_repro_threads()


@pytest.mark.parametrize("point", ["[write]", "[read]", "[merge]"])
@pytest.mark.parametrize("columnar", [True, False])
def test_disk_fault_at_every_spill_site(tables, tmp_path, point, columnar):
    # ENOSPC at each spill I/O point must surface as the injected OSError
    # (not a secondary effect) with zero leaked temp files.
    plan = _spilling_plan(tables)
    fault = Fault(kind="disk", site="spill", label=point)
    with pytest.raises(OSError) as exc_info:
        _run_spilling_with_fault(plan, fault, tmp_path, columnar)
    assert exc_info.value.errno == errno.ENOSPC
    assert point in str(exc_info.value)


def test_disk_fault_armed_not_firing_keeps_spilled_results(tables, tmp_path):
    # The chaos-leg shape: a disk fault armed past any realistic hit count
    # must not change a spilled query's results.
    plan = _spilling_plan(tables)
    baseline = execute_plan(plan, spill=False)
    fault = Fault(kind="disk", site="spill", after=NEVER)
    result = _run_spilling_with_fault(plan, fault, tmp_path, True)
    assert _nan_safe(result.sorted_rows()) == _nan_safe(baseline.sorted_rows())


# --------------------------------------------------------------------- #
# armed-but-not-firing must be byte-invisible
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
@pytest.mark.parametrize("columnar", [True, False])
def test_armed_not_firing_is_identity(tables, parallelism, columnar):
    plan = _relational_plan(tables)
    # spill=False: the fault run's caller-owned ctx never arms spill, so
    # the baseline must not pick it up from the environment either (the
    # tier1-spill CI leg sets REPRO_SPILL_THRESHOLD for the whole suite).
    baseline = execute_plan(
        plan, columnar=columnar, parallelism=parallelism, spill=False
    )
    fault = Fault(kind="error", after=NEVER)
    ctx, armed = _run_with_fault(plan, fault, parallelism, columnar)
    assert _nan_safe(armed.rows) == _nan_safe(baseline.rows)
    assert armed.rows_produced == baseline.rows_produced
    assert armed.peak_buffered_rows == baseline.peak_buffered_rows


# --------------------------------------------------------------------- #
# firing schedule semantics
# --------------------------------------------------------------------- #


def test_after_counts_matching_hits():
    fault = Fault(kind="error", after=3)
    assert [fault.should_fire() for _ in range(4)] == [False, False, True, False]
    repeating = Fault(kind="error", after=2, times=0)
    assert [repeating.should_fire() for _ in range(4)] == [False, True, True, True]


def test_rate_seed_is_deterministic():
    def decisions(seed: int) -> list[bool]:
        fault = Fault(kind="error", rate=0.5, seed=seed, times=0)
        return [fault.should_fire() for _ in range(64)]

    first = decisions(7)
    assert first == decisions(7)
    assert any(first) and not all(first)
    assert decisions(8) != first


def test_site_and_label_matching():
    fault = Fault(kind="error", site="grow", label="build")
    assert fault.matches("grow", "HASH_JOIN (l.v=r.v) build")
    assert not fault.matches("emit", "HASH_JOIN (l.v=r.v) build")
    assert not fault.matches("grow", "RESULT")
    assert Fault(kind="error", label="*").matches("emit", "anything")


# --------------------------------------------------------------------- #
# spec grammar / env resolution
# --------------------------------------------------------------------- #


def test_parse_faults_grammar():
    injector = parse_faults(
        "kind=error,site=grow,label=build,after=3;"
        "kind=delay,delay=0.25,times=0; ;"
        "kind=oom,rate=0.5,seed=42"
    )
    kinds = [f.kind for f in injector.faults]
    assert kinds == ["error", "delay", "oom"]
    assert injector.faults[0].site == "grow"
    assert injector.faults[0].after == 3
    assert injector.faults[1].delay == 0.25
    assert injector.faults[2].rate == 0.5


@pytest.mark.parametrize(
    "spec",
    [
        "site=grow",  # missing kind
        "kind=frobnicate",  # unknown kind
        "kind=error,site=nowhere",  # unknown site
        "kind=error,after=0",  # after must be >= 1
        "kind=error,bogus=1",  # unknown key
        "kind=error,after",  # not key=value
    ],
)
def test_parse_faults_rejects_malformed(spec):
    with pytest.raises(ValueError):
        parse_faults(spec)


def test_resolve_faults_env(tables, monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert resolve_faults(None) is None  # default: nothing armed
    monkeypatch.setenv("REPRO_FAULTS", "kind=error,label=SCAN_TABLE")
    injector = resolve_faults(None)
    assert injector is not None and injector.faults[0].kind == "error"
    # The env schedule reaches execute_plan without any explicit wiring,
    # and each query gets fresh hit counters.
    plan = SeqScan(tables[0], "l")
    for _ in range(2):
        with pytest.raises(InjectedFault):
            execute_plan(plan)
    monkeypatch.setenv("REPRO_FAULTS", f"kind=error,after={NEVER}")
    assert len(execute_plan(plan)) == 8_000
    # Explicit spec strings and injectors win over the env.
    with pytest.raises(InjectedFault):
        execute_plan(plan, faults="kind=error")
