"""Registry front door + plan serialization across all systems."""

from __future__ import annotations

import json

import pytest

from repro.core.plan_proto import operator_counts, plan_to_dict, plan_to_json
from repro.systems import make_system
from repro.workloads import registry


def test_registry_names():
    assert registry.dataset_names() == ["IMDB", "LDBC10", "LDBC100", "LDBC30"]
    assert registry.suite_names() == ["IC", "JOB", "QC", "QR"]
    assert len(registry.suite("IC")) == 18
    assert len(registry.suite("JOB")) == 33
    with pytest.raises(KeyError):
        registry.dataset("LDBC9000")


def test_registry_builds_usable_dataset():
    catalog = registry.dataset("LDBC10", seed=3)
    assert catalog.has_graph("snb")
    assert catalog.graph_index("snb") is not None
    assert catalog.table("person").num_rows > 0


@pytest.mark.parametrize("system_name", ["relgo", "duckdb", "graindb", "kuzu"])
def test_plans_serialize_for_all_systems(fig2, system_name):
    catalog, _, _ = fig2
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a:Person)-[:Knows]->(b:Person)
      COLUMNS (b.name AS n)) g
    """
    system = make_system(system_name, catalog, "G")
    optimized = system.optimize(sql)
    doc = plan_to_dict(optimized.physical)
    # The JSON dump round-trips and keeps the full operator tree.
    parsed = json.loads(plan_to_json(optimized.physical))
    assert parsed == doc
    counts = operator_counts(optimized.physical)
    assert sum(counts.values()) >= 2


def test_converged_plan_nests_graph_subplan(fig2):
    catalog, _, _ = fig2
    system = make_system("relgo", catalog, "G")
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a:Person)-[:Knows]->(b:Person)
      COLUMNS (b.name AS n)) g
    """
    doc = plan_to_dict(system.optimize(sql).physical)

    def find(node, name):
        if node["operator"] == name:
            return node
        for child in node.get("children", []):
            found = find(child, name)
            if found:
                return found
        return None

    sgt = find(doc, "ScanGraphTableOp")
    assert sgt is not None
    # The graph sub-plan is nested within the SCAN_GRAPH_TABLE node.
    assert find(sgt, "ScanVertex") is not None or find(sgt, "Expand") is not None
