"""Relational optimizer: classification, DP ordering, lowering, predefined
joins — all validated against plain hash-join execution on Fig 2 data."""

from __future__ import annotations

import pytest

from repro.errors import OptimizationTimeout
from repro.relational.executor import execute_plan
from repro.relational.expr import col, eq, gt, lit
from repro.relational.logical import AggregateSpec, LogicalScan
from repro.relational.lowering import PhysicalPlanner
from repro.relational.optimizer import (
    QueryBlock,
    RelationalOptimizer,
    RelationalOptimizerConfig,
)
from repro.relational.optimizer.dp import JoinProblem, dp_order, greedy_order
from repro.relational.optimizer.volcano import ExhaustiveEnumerator
from repro.relational.optimizer.cardinality import CardinalityModel


def scan(catalog, table, alias):
    schema = catalog.table(table).schema
    return LogicalScan(table, alias, schema.column_names)


def friends_block(catalog):
    """Friends of Tom and where they live (the Example 1 relational shape)."""
    return QueryBlock(
        relations=[
            scan(catalog, "Person", "p1"),
            scan(catalog, "Knows", "k"),
            scan(catalog, "Person", "p2"),
            scan(catalog, "Place", "pl"),
        ],
        predicates=[
            eq(col("p1.name"), lit("Tom")),
            eq(col("p1.person_id"), col("k.pid1")),
            eq(col("k.pid2"), col("p2.person_id")),
            eq(col("p2.place_id"), col("pl.id")),
        ],
        projections=[(col("p2.name"), "friend"), (col("pl.name"), "place")],
    )


def run_block(catalog, block, use_graph_index=False, **config):
    optimizer = RelationalOptimizer(catalog, RelationalOptimizerConfig(**config))
    plan, report = optimizer.optimize(block)
    planner = PhysicalPlanner(catalog, use_graph_index=use_graph_index)
    physical = planner.lower(plan)
    return execute_plan(physical), report, physical


def test_dp_plan_correct(fig2):
    catalog, _, _ = fig2
    result, report, _ = run_block(catalog, friends_block(catalog))
    assert result.sorted_rows() == [("Bob", "Denmark")]
    assert report.strategy == "dp"


def test_greedy_matches_dp(fig2):
    catalog, _, _ = fig2
    dp_result, _, _ = run_block(catalog, friends_block(catalog))
    greedy_result, report, _ = run_block(
        catalog, friends_block(catalog), join_enumeration="greedy"
    )
    assert greedy_result.sorted_rows() == dp_result.sorted_rows()
    assert report.strategy in ("greedy",)


def test_exhaustive_matches_dp(fig2):
    catalog, _, _ = fig2
    dp_result, _, _ = run_block(catalog, friends_block(catalog))
    ex_result, report, _ = run_block(
        catalog, friends_block(catalog), join_enumeration="exhaustive"
    )
    assert ex_result.sorted_rows() == dp_result.sorted_rows()
    assert report.trees_visited > 0


def test_exhaustive_visits_full_space(fig2):
    """For a 4-relation chain the Volcano space is 2^3 * Catalan(3) = 40."""
    catalog, _, _ = fig2
    block = friends_block(catalog)
    optimizer = RelationalOptimizer(
        catalog, RelationalOptimizerConfig(join_enumeration="exhaustive")
    )
    _, report = optimizer.optimize(block)
    assert report.trees_visited == 40


def test_exhaustive_timeout(fig2):
    """A tiny budget on a many-relation query raises OT, like Fig 4b."""
    catalog, _, _ = fig2
    relations = []
    predicates = []
    for i in range(9):
        relations.append(scan(catalog, "Knows", f"k{i}"))
        if i:
            predicates.append(eq(col(f"k{i - 1}.pid2"), col(f"k{i}.pid1")))
    block = QueryBlock(relations=relations, predicates=predicates)
    optimizer = RelationalOptimizer(
        catalog,
        RelationalOptimizerConfig(join_enumeration="exhaustive", timeout=0.01),
    )
    with pytest.raises(OptimizationTimeout):
        optimizer.optimize(block)


def test_predefined_join_used_and_correct(fig2):
    catalog, _, _ = fig2
    plain, _, _ = run_block(catalog, friends_block(catalog), use_graph_index=False)
    indexed, _, physical = run_block(
        catalog, friends_block(catalog), use_graph_index=True
    )
    assert indexed.sorted_rows() == plain.sorted_rows()
    explained = physical.explain()
    assert "ROWID_JOIN" in explained or "CSR_JOIN" in explained


def test_projection_pruning_applied(fig2):
    catalog, _, _ = fig2
    block = friends_block(catalog)
    optimizer = RelationalOptimizer(catalog, RelationalOptimizerConfig())
    plan, _ = optimizer.optimize(block)
    from repro.relational.logical import walk

    scans = [n for n in walk(plan) if isinstance(n, LogicalScan)]
    knows = next(n for n in scans if n.alias == "k")
    # Knows only contributes its two join keys.
    assert set(knows.projected or []) == {"pid1", "pid2"}


def test_aggregate_block(fig2):
    catalog, _, _ = fig2
    block = QueryBlock(
        relations=[scan(catalog, "Likes", "l")],
        predicates=[gt(col("l.date"), lit("2024-03-25"))],
        aggregates=[AggregateSpec("COUNT", None, "n")],
    )
    result, _, _ = run_block(catalog, block)
    assert result.rows == [(2,)]


def test_single_relation_block(fig2):
    catalog, _, _ = fig2
    block = QueryBlock(
        relations=[scan(catalog, "Person", "p")],
        predicates=[eq(col("p.name"), lit("Tom"))],
        projections=[(col("p.person_id"), "id")],
    )
    result, _, _ = run_block(catalog, block)
    assert result.rows == [(1,)]


def test_cardinality_model_pk_fk(fig2):
    catalog, _, _ = fig2
    model = CardinalityModel(catalog)
    person = scan(catalog, "Person", "p")
    knows = scan(catalog, "Knows", "k")
    rows = model.join_rows(
        model.leaf_rows(knows),
        model.leaf_rows(person),
        [(model.leaf_ndv(knows, "k.pid2"), model.leaf_ndv(person, "p.person_id"))],
    )
    # FK join of Knows against its PK side keeps ~|Knows| rows.
    assert rows == pytest.approx(4.0, rel=0.3)
