"""Search-space enumerators (Theorem 1 / Fig 4a)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.search_space import (
    agnostic_search_space,
    aware_search_space,
    count_join_trees,
    count_join_trees_chain,
    path_pattern,
    search_space_comparison,
    translated_join_graph,
)


def catalan(n: int) -> int:
    return math.comb(2 * n, n) // (n + 1)


@pytest.mark.parametrize("k", range(1, 12))
def test_chain_count_closed_form(k):
    """Ordered bushy trees over a chain: 2^(k-1) * Catalan(k-1)."""
    assert count_join_trees_chain(k) == (2 ** (k - 1)) * catalan(k - 1)


@pytest.mark.parametrize("k", range(2, 9))
def test_bitmask_dp_agrees_with_chain_formula(k):
    """The generic subset-DP must agree with the chain recurrence."""
    edges = [(i, i + 1) for i in range(k - 1)]
    # Force the generic path by adding and removing nothing: call the DP on
    # a star graph too, and on the chain via a permuted labeling so the
    # chain detector still fires — instead, compare on a cycle (not a chain).
    assert count_join_trees(k, edges) == count_join_trees_chain(k)


def test_cycle_join_graph_counts_more_than_chain():
    k = 6
    chain = [(i, i + 1) for i in range(k - 1)]
    cycle = chain + [(k - 1, 0)]
    assert count_join_trees(k, cycle) > count_join_trees(k, chain)


def test_translated_join_graph_shape():
    pattern = path_pattern(3)
    n, edges = translated_join_graph(pattern)
    assert n == 4 + 3  # vertices + edge relations
    assert len(edges) == 6  # each edge relation joins two endpoints


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 8))
def test_agnostic_always_dominates_aware(m):
    pattern = path_pattern(m)
    assert agnostic_search_space(pattern) >= aware_search_space(pattern)


def test_gap_grows_exponentially():
    rows = search_space_comparison(8)
    ratios = [r["ratio"] for r in rows]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    # Theorem 1: exponential growth — the log of the ratio grows at least
    # linearly.
    logs = [math.log10(r) for r in ratios]
    diffs = [b - a for a, b in zip(logs, logs[1:])]
    assert min(diffs) > 0.3


def test_single_edge_has_two_aware_plans():
    """Fig 3: a single-edge pattern can expand from either endpoint."""
    assert aware_search_space(path_pattern(1)) == 2


def test_triangle_spaces():
    triangle = (
        path_pattern(2)
        .induced_subpattern({"v0", "v1", "v2"})
    )
    from repro.graph.pattern import PatternEdge, PatternGraph

    tri = PatternGraph(
        list(triangle.vertices.values()),
        list(triangle.edges.values())
        + [PatternEdge("closing", "E", "v0", "v2")],
    )
    agnostic = agnostic_search_space(tri)
    aware = aware_search_space(tri)
    assert agnostic > aware >= 3  # at least one star step per peel choice
