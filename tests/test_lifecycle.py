"""Query lifecycle: deadlines, cancellation, leases, and clean teardown.

The invariant every test here pins: **however a query ends** — deadline
expiry, cooperative cancel, abandoned iterator, OOM — the engine unwinds
deterministically: the expected exception type surfaces, operator
``finally`` blocks run (``ctx.buffered_rows`` returns to zero), worker
threads exit (no ``repro-*`` threads left in ``threading.enumerate()``),
and the query's budget lease returns to the governor.  Under the default
config none of this machinery is armed, which the tier-1 parity suites
already pin (same results, same OOM trip points).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.sqlpgq import parse_and_bind
from repro.errors import (
    AdmissionError,
    OutOfMemoryError,
    QueryCancelled,
    QueryTimeout,
)
from repro.exec import (
    ExecutionContext,
    MemoryGovernor,
    QueryHandle,
    execute_plan,
    parallelize_plan,
    resolve_timeout,
    set_global_governor,
)
from repro.relational.expr import col, gt, lit
from repro.relational.logical import AggregateSpec
from repro.relational.physical import AggregateOp, FilterOp, HashJoin, SeqScan
from tests.test_parallel_exec import make_table

PARALLELISM = 4


@pytest.fixture(scope="module")
def table():
    return make_table()


def assert_no_repro_threads(grace: float = 5.0) -> None:
    """All engine worker threads (named ``repro-*``) must have exited."""
    deadline = time.monotonic() + grace
    leaked: list = []
    while time.monotonic() < deadline:
        leaked = [
            t for t in threading.enumerate() if t.name.startswith("repro-")
        ]
        if not leaked:
            return
        time.sleep(0.01)
    assert not leaked, leaked


# --------------------------------------------------------------------- #
# QueryHandle / resolve_timeout units
# --------------------------------------------------------------------- #


def test_handle_check_is_noop_until_cancelled():
    handle = QueryHandle()
    handle.check()  # no deadline, not cancelled: never raises
    assert not handle.cancelled
    assert handle.remaining() is None
    handle.cancel("caller gave up")
    assert handle.cancelled
    with pytest.raises(QueryCancelled) as exc_info:
        handle.check()
    assert exc_info.value.reason == "caller gave up"


def test_handle_deadline_expiry_marks_every_thread_timed_out():
    handle = QueryHandle(deadline_seconds=0.005)
    time.sleep(0.02)
    with pytest.raises(QueryTimeout):
        handle.check()
    # Subsequent checks (other workers) see the same error type.
    with pytest.raises(QueryTimeout) as exc_info:
        handle.check()
    assert exc_info.value.elapsed >= exc_info.value.deadline
    assert isinstance(exc_info.value, QueryCancelled)  # one except clause stops both


def test_handle_wait_is_interruptible():
    handle = QueryHandle()
    canceller = threading.Timer(0.02, handle.cancel)
    canceller.start()
    started = time.monotonic()
    with pytest.raises(QueryCancelled):
        handle.wait(30.0)
    assert time.monotonic() - started < 5.0
    canceller.join()


def test_resolve_timeout_explicit_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "7.5")
    assert resolve_timeout(1.25) == 1.25
    assert resolve_timeout(None) == 7.5
    assert resolve_timeout(0) is None  # non-positive disables
    assert resolve_timeout(-3) is None
    monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "0")
    assert resolve_timeout(None) is None
    monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "")
    assert resolve_timeout(None) is None
    monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "soon")
    with pytest.raises(ValueError):
        resolve_timeout(None)


# --------------------------------------------------------------------- #
# execute_plan: timeout / cancel / teardown
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
@pytest.mark.parametrize("columnar", [True, False])
def test_timeout_raises_and_tears_down(table, parallelism, columnar):
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.v"), "v")],
        [AggregateSpec("COUNT", None, "c")],
    )
    ctx = ExecutionContext(
        parallelism=parallelism, handle=QueryHandle(deadline_seconds=1e-9)
    )
    with pytest.raises(QueryTimeout):
        execute_plan(plan, columnar=columnar, ctx=ctx)
    assert ctx.buffered_rows == 0
    assert_no_repro_threads()


def test_timeout_env_knob(table, monkeypatch):
    monkeypatch.setenv("REPRO_QUERY_TIMEOUT", "0.000000001")
    with pytest.raises(QueryTimeout):
        execute_plan(SeqScan(table, "t"))
    # An explicit generous timeout overrides the env and succeeds.
    result = execute_plan(SeqScan(table, "t"), timeout=120.0)
    assert len(result) == table.num_rows


def test_precancelled_handle_stops_before_work(table):
    handle = QueryHandle()
    handle.cancel("session closed")
    with pytest.raises(QueryCancelled) as exc_info:
        execute_plan(SeqScan(table, "t"), handle=handle)
    assert exc_info.value.reason == "session closed"


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_concurrent_cancel_unwinds_cleanly(table, parallelism):
    # A many-to-many join (v has ~200 duplicates per value) produces ~4M
    # rows — far more than can materialize before the 30ms cancel lands.
    join = HashJoin(SeqScan(table, "l"), SeqScan(make_table(20_000, "r"), "r"),
                    ["l.v"], ["r.v"])
    handle = QueryHandle()
    ctx = ExecutionContext(parallelism=parallelism, handle=handle)
    canceller = threading.Timer(0.03, handle.cancel, kwargs={"reason": "killed"})
    canceller.start()
    with pytest.raises(QueryCancelled):
        execute_plan(join, ctx=ctx)
    canceller.join()
    assert ctx.buffered_rows == 0
    assert_no_repro_threads()


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_deadline_expiring_inside_fold(table, parallelism):
    # The deadline fires while breaker folds are consuming morsels on
    # worker threads: join_interruptible must surface QueryTimeout in the
    # consumer and reap the crew.  The aggregate groups a ~4M-row join
    # (v has ~200 duplicates per value), so no machine finishes in 10ms.
    plan = AggregateOp(
        HashJoin(SeqScan(table, "l"), SeqScan(make_table(20_000, "r"), "r"),
                 ["l.v"], ["r.v"]),
        [(col("l.id"), "id")],
        [AggregateSpec("SUM", col("r.v"), "s")],
    )
    ctx = ExecutionContext(
        parallelism=parallelism, handle=QueryHandle(deadline_seconds=0.01)
    )
    with pytest.raises(QueryTimeout):
        execute_plan(plan, ctx=ctx)
    assert ctx.buffered_rows == 0
    assert_no_repro_threads()


def test_oom_error_path_releases_result_buffer(table):
    ctx = ExecutionContext(memory_budget_rows=1_000)
    with pytest.raises(OutOfMemoryError) as exc_info:
        execute_plan(SeqScan(table, "t"), ctx=ctx)
    assert exc_info.value.label == "RESULT"
    assert ctx.buffered_rows == 0  # the satellite fix: released in finally


def test_oom_carries_owning_buffer_label(table):
    small = make_table(10, "l")
    join = HashJoin(SeqScan(small, "l"), SeqScan(table, "r"), ["l.v"], ["r.v"])
    with pytest.raises(OutOfMemoryError) as exc_info:
        execute_plan(join, memory_budget_rows=10_000, spill=False)
    assert "build" in exc_info.value.label
    assert exc_info.value.label in str(exc_info.value)
    assert exc_info.value.rows > exc_info.value.budget == 10_000


# --------------------------------------------------------------------- #
# abandoned iterators tear down deterministically
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_abandoned_stream_releases_buffers_on_close(table, parallelism):
    join = HashJoin(SeqScan(table, "l"), SeqScan(make_table(5_000, "r"), "r"),
                    ["l.v"], ["r.v"])
    ctx = ExecutionContext(parallelism=parallelism)
    plan = parallelize_plan(join, parallelism, ctx.batch_size)
    stream = plan.columnar_batches(ctx)
    assert len(next(stream))
    assert ctx.buffered_rows > 0  # the build table is live mid-stream
    stream.close()
    assert ctx.buffered_rows == 0
    assert_no_repro_threads()


def test_execute_iter_abandon_releases_lease_and_buffers(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    optimized = framework.optimize(
        parse_and_bind(
            """
            SELECT p_name, m_content
            FROM GRAPH_TABLE (G MATCH (p:Person)-[:Likes]->(m:Message)
                              COLUMNS (p.name AS p_name, m.content AS m_content))
            ORDER BY p_name, m_content
            """,
            catalog,
        )
    )
    observer = MemoryGovernor()
    previous = set_global_governor(observer)
    try:
        stream = framework.execute_iter(optimized)
        first = next(stream)
        assert first
        assert observer.active_leases == 1
        stream.close()  # consumer abandons mid-stream
        assert observer.active_leases == 0
        # `break` out of a for loop only GC-closes; an explicit with-style
        # close is the supported contract, but del must not leak either.
        stream = framework.execute_iter(optimized)
        next(stream)
        del stream
        import gc

        gc.collect()
        assert observer.active_leases == 0
    finally:
        set_global_governor(previous)
    assert_no_repro_threads()


# --------------------------------------------------------------------- #
# MemoryGovernor admission control
# --------------------------------------------------------------------- #


def test_unbounded_governor_is_identity():
    governor = MemoryGovernor()
    lease = governor.lease(12_345, label="q1")
    assert lease.budget_rows == 12_345
    assert governor.active_leases == 1
    unlimited = governor.lease(None, label="q2")
    assert unlimited.budget_rows is None  # unlimited request stays unlimited
    lease.release()
    lease.release()  # idempotent
    unlimited.release()
    assert governor.active_leases == 0
    assert governor.leased_rows == 0


def test_bounded_governor_admits_within_pool():
    governor = MemoryGovernor(total_rows=1_000)
    a = governor.lease(600)
    assert a.budget_rows == 600  # granted budgets are never shrunk
    with pytest.raises(AdmissionError) as exc_info:
        governor.lease(600)  # 600 + 600 > 1000, fail-fast default
    assert exc_info.value.leased == 600
    b = governor.lease(400)
    assert governor.leased_rows == 1_000
    a.release()
    c = governor.lease(600)
    for lease in (b, c):
        lease.release()
    assert governor.leased_rows == 0


def test_bounded_governor_rejects_impossible_requests():
    governor = MemoryGovernor(total_rows=1_000)
    with pytest.raises(AdmissionError):
        governor.lease(2_000)  # can never fit: immediate, even with timeout
    # An unlimited request claims the whole pool.
    whole = governor.lease(None)
    assert whole.budget_rows is None
    with pytest.raises(AdmissionError):
        governor.lease(1)
    whole.release()
    governor.lease(1).release()


def test_bounded_governor_waits_for_release():
    governor = MemoryGovernor(total_rows=1_000)
    first = governor.lease(900)
    releaser = threading.Timer(0.05, first.release)
    releaser.start()
    second = governor.lease(900, timeout=5.0)  # blocks until the release
    assert second.budget_rows == 900
    second.release()
    releaser.join()


def test_bounded_governor_admission_timeout_expires():
    governor = MemoryGovernor(total_rows=1_000)
    held = governor.lease(900)
    started = time.monotonic()
    with pytest.raises(AdmissionError):
        governor.lease(900, timeout=0.05)
    assert time.monotonic() - started < 5.0
    held.release()


def test_execute_plan_runs_under_bounded_governor(table):
    governor = MemoryGovernor(total_rows=100_000)
    result = execute_plan(
        SeqScan(table, "t"), memory_budget_rows=50_000, governor=governor
    )
    assert len(result) == table.num_rows
    assert governor.active_leases == 0  # released in execute_plan's finally
    # A failing query releases too.
    with pytest.raises(OutOfMemoryError):
        execute_plan(
            SeqScan(table, "t"), memory_budget_rows=1_000, governor=governor, spill=False
        )
    assert governor.active_leases == 0
    with pytest.raises(AdmissionError):
        execute_plan(
            SeqScan(table, "t"), memory_budget_rows=200_000, governor=governor
        )


def test_concurrent_queries_lease_from_one_pool(table):
    # N threads × M queries against a pool sized for roughly half of them:
    # admission (with a generous wait) serializes the overflow, every query
    # completes, and the pool drains back to zero.
    governor = MemoryGovernor(total_rows=90_000, admission_timeout=30.0)
    plan = FilterOp(SeqScan(table, "t"), gt(col("t.v"), lit(3)))
    expected = len(execute_plan(plan))
    failures: list = []

    def client(worker: int) -> None:
        try:
            for _ in range(3):
                result = execute_plan(
                    plan, memory_budget_rows=30_000, governor=governor
                )
                if len(result) != expected:
                    failures.append((worker, "mismatch", len(result)))
        except Exception as exc:  # noqa: BLE001 — surfaced via failures
            failures.append((worker, repr(exc)))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:3]
    assert governor.active_leases == 0
    assert governor.leased_rows == 0


# --------------------------------------------------------------------- #
# cancellation under load (stress)
# --------------------------------------------------------------------- #


def test_cancel_racing_concurrent_appends(table):
    # Readers execute parallel scans with per-query handles while a writer
    # appends and a canceller kills handles mid-flight: every outcome must
    # be either a complete result or QueryCancelled — nothing else — and
    # teardown must leave no threads or buffered rows behind.
    target = make_table(8_000, "w")
    plan = FilterOp(SeqScan(target, "w"), gt(col("w.id"), lit(-1)))
    failures: list = []
    cancelled = [0]
    done = threading.Event()

    def writer() -> None:
        try:
            n0 = 8_000
            for i in range(400):
                target.append((n0 + i, (i * 7) % 97, float(i % 13)), validate=False)
        except Exception as exc:  # noqa: BLE001
            failures.append(repr(exc))
        finally:
            done.set()

    def reader() -> None:
        while not done.is_set():
            handle = QueryHandle()
            ctx = ExecutionContext(parallelism=PARALLELISM, handle=handle)
            canceller = threading.Timer(0.002, handle.cancel)
            canceller.start()
            try:
                execute_plan(plan, ctx=ctx)
            except QueryCancelled:
                cancelled[0] += 1
            except Exception as exc:  # noqa: BLE001
                failures.append(repr(exc))
            finally:
                canceller.cancel()
                canceller.join()
            if ctx.buffered_rows != 0:
                failures.append(("buffered_rows", ctx.buffered_rows))

    threads = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread = threading.Thread(target=writer)
    for t in threads:
        t.start()
    writer_thread.start()
    writer_thread.join()
    for t in threads:
        t.join()
    assert not failures, failures[:3]
    assert_no_repro_threads()


def test_default_config_arms_nothing(table):
    # The zero-cost contract: no env, no knobs → no handle, no faults, and
    # byte-identical results to the seed engine.
    ctx = ExecutionContext()
    assert ctx.handle is None and ctx.faults is None
    assert ctx.spill is None and ctx.spill_limit() is None
    result = execute_plan(SeqScan(table, "t"))
    assert len(result) == table.num_rows
