"""Workload integration: generators are well-formed, all queries parse and
bind, and all systems agree on results at a small scale."""

from __future__ import annotations

import pytest

from repro.core.sqlpgq import parse_and_bind
from repro.graph.index import build_graph_index
from repro.systems import make_system
from repro.workloads.job import JobParams, generate_imdb, job_queries
from repro.workloads.ldbc import (
    LdbcParams,
    generate_ldbc,
    ic_queries,
    qc_queries,
    qr_queries,
)


@pytest.fixture(scope="module")
def ldbc_tiny():
    catalog, mapping = generate_ldbc(LdbcParams(persons=80, forums=10, seed=3))
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog, mapping


@pytest.fixture(scope="module")
def imdb_tiny():
    catalog, mapping = generate_imdb(JobParams.scaled(0.25))
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog, mapping


def test_ldbc_generator_shape(ldbc_tiny):
    catalog, mapping = ldbc_tiny
    assert catalog.table("person").num_rows == 80
    assert catalog.table("knows").num_rows > 0
    # knows is symmetric: every (a, b) has (b, a).
    pairs = set(
        zip(catalog.table("knows").column("p1"), catalog.table("knows").column("p2"))
    )
    assert all((b, a) in pairs for a, b in pairs)
    mapping.validate()


def test_ldbc_degree_skew(ldbc_tiny):
    catalog, mapping = ldbc_tiny
    index = catalog.graph_index("snb")
    adj = index.adjacency("person", "knows", "out")
    degrees = sorted(
        (adj.offsets[v + 1] - adj.offsets[v] for v in range(len(adj.offsets) - 1)),
        reverse=True,
    )
    # Power-law-ish: the top person has several times the median degree.
    median = degrees[len(degrees) // 2]
    assert degrees[0] >= max(3 * max(median, 1), 4)


def test_imdb_generator_shape(imdb_tiny):
    catalog, mapping = imdb_tiny
    assert catalog.table("title").num_rows == 300
    assert catalog.table("cast_info").num_rows == catalog.table("cast_info_name").num_rows
    mapping.validate()
    # Fig 12's special keyword must exist.
    assert "character-name-in-title" in catalog.table("keyword").column("keyword")


def test_all_ldbc_queries_bind(ldbc_tiny):
    catalog, _ = ldbc_tiny
    suite = {**ic_queries(), **qr_queries(), **qc_queries()}
    assert len(suite) == 18 + 4 + 3
    for name, sql in suite.items():
        query = parse_and_bind(sql, catalog)
        assert query.graph_table is not None, name


def test_all_job_queries_bind(imdb_tiny):
    catalog, _ = imdb_tiny
    suite = job_queries()
    assert len(suite) == 33
    for name, sql in suite.items():
        query = parse_and_bind(sql, catalog)
        assert query.graph_table is not None, name
        assert query.aggregates, name


SYSTEMS_UNDER_TEST = ["relgo", "relgo_norule", "relgo_noei", "relgo_hash",
                      "duckdb", "graindb", "umbra", "kuzu"]


@pytest.mark.parametrize("query_name", ["IC1-2", "IC5-1", "IC7", "QC1", "QR1"])
def test_ldbc_systems_agree(ldbc_tiny, query_name):
    catalog, _ = ldbc_tiny
    suite = {**ic_queries(), **qr_queries(), **qc_queries()}
    sql = suite[query_name]
    reference = None
    for name in SYSTEMS_UNDER_TEST:
        system = make_system(name, catalog, "snb")
        query = parse_and_bind(sql, catalog)
        optimized = system.optimize(query)
        result = system.framework.execute(optimized)
        rows = result.sorted_rows()
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"{name} disagrees on {query_name}"


@pytest.mark.parametrize("query_name", ["JOB1", "JOB17", "JOB30"])
def test_job_systems_agree(imdb_tiny, query_name):
    catalog, _ = imdb_tiny
    sql = job_queries([query_name])[query_name]
    reference = None
    for name in ["relgo", "duckdb", "graindb", "umbra", "relgo_hash"]:
        system = make_system(name, catalog, "imdb")
        query = parse_and_bind(sql, catalog)
        optimized = system.optimize(query)
        result = system.framework.execute(optimized)
        rows = result.sorted_rows()
        if reference is None:
            reference = rows
        else:
            assert rows == reference, f"{name} disagrees on {query_name}"


def test_system_result_statuses(ldbc_tiny):
    catalog, _ = ldbc_tiny
    system = make_system("relgo", catalog, "snb")
    result = system.run(qc_queries()["QC1"], query_name="QC1")
    assert result.ok()
    assert result.total_time > 0


def test_qc3_oom_shape(ldbc_tiny):
    """The Fig 9 / Sec 5.3.3 OOM shape: under one memory budget, RelGo's
    wco plan fits while the naive (Kùzu) and multi-join (NoEI) plans blow
    their intermediates."""
    catalog, _ = ldbc_tiny
    budget = 20_000
    kuzu = make_system("kuzu", catalog, "snb", memory_budget_rows=budget)
    assert kuzu.run(qc_queries()["QC3"], query_name="QC3").status == "OOM"
    noei = make_system("relgo_noei", catalog, "snb", memory_budget_rows=budget)
    assert noei.run(qc_queries()["QC3"], query_name="QC3").status == "OOM"
    relgo = make_system("relgo", catalog, "snb", memory_budget_rows=budget)
    assert relgo.run(qc_queries()["QC3"], query_name="QC3").ok()


@pytest.mark.parametrize("backend", ["dict", "typed", "list"])
def test_qc3_oom_trip_points_storage_independent(backend):
    """The memory budget charges *rows*, never bytes, so switching the
    column storage backend (dictionary-encoded strings, typed buffers,
    plain lists) must leave the Fig 9 OOM trip points exactly where the
    seed pinned them: same budget, same per-system statuses."""
    from repro.relational.column import set_storage_backend

    try:
        set_storage_backend(backend)
        catalog, mapping = generate_ldbc(LdbcParams(persons=80, forums=10, seed=3))
        catalog.register_graph_index(build_graph_index(mapping))
        budget = 20_000
        statuses = {
            name: make_system(name, catalog, "snb", memory_budget_rows=budget)
            .run(qc_queries()["QC3"], query_name="QC3")
            .status
            for name in ("kuzu", "relgo_noei", "relgo")
        }
    finally:
        set_storage_backend(None)
    assert statuses == {"kuzu": "OOM", "relgo_noei": "OOM", "relgo": "ok"}
