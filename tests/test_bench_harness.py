"""The benchmark harness: grid runner statuses and report formatting."""

from __future__ import annotations

from repro.bench.reporting import (
    average_speedup,
    format_table,
    geometric_mean,
    speedup_table,
    speedups_vs_baseline,
)
from repro.bench.runner import Measurement, by_cell, run_grid
from repro.systems import make_system
from repro.workloads.ldbc import qc_queries


def fake_measurements():
    return [
        Measurement("relgo", "Q1", "ok", 0.001, 0.010),
        Measurement("duckdb", "Q1", "ok", 0.001, 0.040),
        Measurement("relgo", "Q2", "ok", 0.002, 0.020),
        Measurement("duckdb", "Q2", "ok", 0.001, 0.020),
        Measurement("relgo", "Q3", "ok", 0.001, 0.005),
        Measurement("duckdb", "Q3", "OOM", 0.001, 0.0),
    ]


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == 4.0
    assert geometric_mean([]) == 0.0


def test_speedups_and_average():
    ms = fake_measurements()
    ratios = speedups_vs_baseline(ms, baseline="duckdb")
    assert abs(ratios[("relgo", "Q1")] - (0.041 / 0.011)) < 1e-9
    assert ratios[("relgo", "Q3")] is None  # baseline OOM -> no ratio
    avg = average_speedup(ms, "relgo", "duckdb")
    assert avg == geometric_mean([0.041 / 0.011, 0.021 / 0.022])


def test_format_table_marks_failures():
    text = format_table(
        fake_measurements(), systems=["relgo", "duckdb"], queries=["Q1", "Q2", "Q3"]
    )
    assert "OOM" in text
    assert "Q1" in text and "Q3" in text


def test_speedup_table_renders():
    text = speedup_table(
        fake_measurements(),
        systems=["relgo"],
        queries=["Q1", "Q2", "Q3"],
        baseline="duckdb",
        title="demo",
    )
    assert "demo" in text
    assert "avg" in text
    # Q3 has no ratio (the baseline OOMed): the cell shows the system's own
    # status instead of a number.
    q3_line = next(line for line in text.splitlines() if line.startswith("Q3"))
    assert "x" not in q3_line


def test_run_grid_statuses(fig2):
    catalog, _, _ = fig2
    # Reuse the LDBC QC1 SQL against the fig2 graph? No — use a fig2 query.
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a:Person)-[:Knows]->(b:Person)
      COLUMNS (b.name AS n)) g
    """
    systems = {
        "relgo": make_system("relgo", catalog, "G"),
        "duckdb": make_system("duckdb", catalog, "G"),
    }
    measurements = run_grid(systems, {"Q": sql}, repetitions=2)
    cells = by_cell(measurements)
    assert cells[("relgo", "Q")].status == "ok"
    assert cells[("relgo", "Q")].rows == 4
    assert cells[("duckdb", "Q")].rows == 4
    assert cells[("relgo", "Q")].repetitions == 2


def test_run_grid_reports_oom(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT an FROM GRAPH_TABLE (G
      MATCH (a:Person)-[:Knows]->(b:Person)-[:Knows]->(c:Person)
      COLUMNS (a.name AS an)) g
    """
    system = make_system("relgo", catalog, "G", memory_budget_rows=2)
    measurements = run_grid({"relgo": system}, {"Q": sql})
    assert measurements[0].status == "OOM"
