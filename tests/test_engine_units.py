"""Unit tests for engine pieces: types, tables, statistics, executor
budget, aggregation, sorting, plan serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan_proto import operator_counts, plan_signature, plan_to_dict
from repro.errors import OutOfMemoryError, SchemaError
from repro.relational.executor import ExecutionContext, execute_plan
from repro.relational.expr import col, ge, gt, lit
from repro.relational.logical import AggregateSpec
from repro.relational.physical import (
    AggregateOp,
    DistinctOp,
    HashJoin,
    LimitOp,
    MaterializedInput,
    NestedLoopJoin,
    SeqScan,
    SortOp,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.statistics import collect_stats, predicate_selectivity
from repro.relational.table import Table
from repro.relational.types import DataType


def make_table(rows):
    schema = TableSchema(
        "t",
        [Column("id", DataType.INT), Column("v", DataType.INT)],
        primary_key="id",
    )
    return Table(schema, rows=rows)


def test_type_validation():
    assert DataType.INT.validate(3) == 3
    assert DataType.FLOAT.validate(3) == 3.0
    assert DataType.DATE.validate("2024-01-02") == "2024-01-02"
    assert DataType.STRING.validate(None) is None
    with pytest.raises(SchemaError):
        DataType.INT.validate("x")
    with pytest.raises(SchemaError):
        DataType.DATE.validate("Jan 2, 2024")
    with pytest.raises(SchemaError):
        DataType.BOOL.validate(1)


def test_table_pk_index_and_rows():
    table = make_table([(1, 10), (2, 20), (3, 30)])
    assert table.pk_lookup(2) == 1
    assert table.pk_lookup(99) is None
    assert table.row(0) == (1, 10)
    assert list(table.iter_rows())[2] == (3, 30)
    with pytest.raises(SchemaError):
        make_table([(1, 10), (1, 11)]).pk_lookup(1)  # duplicate PK


def test_table_arity_check():
    table = make_table([])
    with pytest.raises(SchemaError):
        table.append((1, 2, 3))


def test_statistics_distinct_and_range():
    table = make_table([(i, i % 10) for i in range(100)])
    stats = collect_stats(table, histogram_buckets=8)
    assert stats.row_count == 100
    assert stats.column_stats["v"].distinct == 10
    sel = predicate_selectivity(gt(col("v"), lit(4)), stats)
    assert 0.2 < sel < 0.8
    eq_sel = predicate_selectivity(ge(col("id"), lit(90)), stats)
    assert 0.02 < eq_sel < 0.25


def test_histogram_improves_skew_estimates():
    # 90% of values are 0; histograms + MCVs should notice.
    table = make_table([(i, 0 if i < 90 else i) for i in range(100)])
    stats = collect_stats(table, histogram_buckets=8)
    from repro.relational.expr import eq as eq_

    sel = predicate_selectivity(eq_(col("v"), lit(0)), stats)
    assert sel > 0.5


def test_executor_memory_budget():
    table = make_table([(i, i) for i in range(100)])
    left = SeqScan(table, "a")
    right = SeqScan(table, "b")
    cross = NestedLoopJoin(left, right, None)  # 10k rows
    with pytest.raises(OutOfMemoryError):
        execute_plan(cross, memory_budget_rows=5000, spill=False)
    result = execute_plan(cross, memory_budget_rows=20000)
    assert len(result) == 10000


def test_hash_join_residual_and_nulls():
    t1 = make_table([(1, 5), (2, None), (3, 7)])
    t2 = make_table([(5, 1), (7, 2)])
    join = HashJoin(
        SeqScan(t1, "l"),
        SeqScan(t2, "r"),
        ["l.v"],
        ["r.id"],
        residual=gt(col("r.v"), lit(1)),
    )
    result = execute_plan(join)
    # NULL keys never match; residual keeps only r.v > 1.
    assert result.rows == [(3, 7, 7, 2)]


def test_aggregate_functions():
    table = make_table([(1, 5), (2, 5), (3, 7), (4, None)])
    agg = AggregateOp(
        SeqScan(table, "t"),
        group_by=[(col("t.v"), "v")],
        aggregates=[
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("SUM", col("t.id"), "s"),
            AggregateSpec("AVG", col("t.id"), "a"),
            AggregateSpec("MIN", col("t.id"), "lo"),
            AggregateSpec("MAX", col("t.id"), "hi"),
        ],
    )
    rows = {r[0]: r[1:] for r in execute_plan(agg).rows}
    assert rows[5] == (2, 3, 1.5, 1, 2)
    assert rows[7] == (1, 3, 3.0, 3, 3)
    assert rows[None] == (1, 4, 4.0, 4, 4)


def test_sort_multi_key_and_nulls():
    table = make_table([(1, None), (2, 3), (3, 1), (4, 3)])
    plan = SortOp(
        SeqScan(table, "t"),
        keys=[(col("t.v"), False), (col("t.id"), True)],
    )
    rows = execute_plan(plan).rows
    assert [r[0] for r in rows] == [2, 4, 3, 1]  # v desc (nulls last), id asc


def test_limit_and_distinct():
    table = make_table([(1, 1), (2, 1), (3, 2)])
    from repro.relational.physical import ProjectOp

    distinct = DistinctOp(ProjectOp(SeqScan(table, "t"), [(col("t.v"), "v")]))
    assert sorted(execute_plan(distinct).rows) == [(1,), (2,)]
    limited = LimitOp(SeqScan(table, "t"), 2)
    assert len(execute_plan(limited)) == 2


def test_plan_serialization():
    table = make_table([(1, 1)])
    plan = LimitOp(SeqScan(table, "t"), 1)
    doc = plan_to_dict(plan)
    assert doc["operator"] == "LimitOp"
    assert doc["children"][0]["operator"] == "SeqScan"
    assert plan_signature(plan) == ("LimitOp", ("SeqScan",))
    assert operator_counts(plan) == {"LimitOp": 1, "SeqScan": 1}


def test_materialized_input():
    op = MaterializedInput(["a", "b"], [(1, 2), (3, 4)])
    result = execute_plan(op)
    assert result.rows == [(1, 2), (3, 4)]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 5)), max_size=30))
def test_hash_join_matches_nested_loop(pairs):
    rows = [(i, v) for i, (k, v) in enumerate(pairs)]
    table = make_table(rows)
    from repro.relational.expr import eq as eq_

    hj = HashJoin(SeqScan(table, "l"), SeqScan(table, "r"), ["l.v"], ["r.v"])
    nl = NestedLoopJoin(
        SeqScan(table, "l"), SeqScan(table, "r"), eq_(col("l.v"), col("r.v"))
    )
    assert sorted(execute_plan(hj).rows) == sorted(execute_plan(nl).rows)
