"""Streaming-engine semantics: LIMIT early exit, TopK, buffer-scoped OOM,
and converged vs graph-agnostic result parity on the shared fixtures."""

from __future__ import annotations

import random

import pytest

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery
from repro.errors import OutOfMemoryError, SchemaError
from repro.exec import MaterializeOp, execute_plan, materialize_plan
from repro.graph.pattern import PatternGraph
from repro.relational.expr import col, gt, lit
from repro.relational.physical import (
    FilterOp,
    HashJoin,
    LimitOp,
    ProjectOp,
    SeqScan,
    SortOp,
    TopKOp,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


def make_table(rows):
    schema = TableSchema(
        "t",
        [Column("id", DataType.INT), Column("v", DataType.INT)],
        primary_key="id",
    )
    return Table(schema, rows=rows)


@pytest.fixture(scope="module")
def big_table():
    return make_table([(i, i % 97) for i in range(50_000)])


# --------------------------------------------------------------------- #
# LIMIT early exit
# --------------------------------------------------------------------- #


def test_limit_early_exit_bounds_rows_produced(big_table):
    plan = LimitOp(
        ProjectOp(
            FilterOp(SeqScan(big_table, "t"), gt(col("t.v"), lit(10))),
            [(col("t.id"), "id")],
        ),
        10,
    )
    result = execute_plan(plan)
    assert len(result) == 10
    # The scan stops after a handful of batches instead of 50k rows per
    # operator; leave generous headroom over 3 ops x a few batches.
    assert result.rows_produced < 10_000
    # The same plan fully materialized (the pre-streaming engine) pays for
    # every operator's full output.
    materialized = execute_plan(
        materialize_plan(
            LimitOp(
                ProjectOp(
                    FilterOp(SeqScan(big_table, "t"), gt(col("t.v"), lit(10))),
                    [(col("t.id"), "id")],
                ),
                10,
            )
        )
    )
    assert materialized.sorted_rows() == result.sorted_rows()
    assert result.rows_produced < materialized.rows_produced


def test_streaming_pipeline_does_not_false_trip_budget(big_table):
    # 50k rows flow through scan -> filter -> limit under a 500-row budget:
    # nothing buffers more than a batch, so the budget must not fire.
    plan = LimitOp(FilterOp(SeqScan(big_table, "t"), gt(col("t.v"), lit(10))), 100)
    result = execute_plan(plan, memory_budget_rows=500)
    assert len(result) == 100
    assert result.peak_buffered_rows <= 500


# --------------------------------------------------------------------- #
# OOM still fires on genuinely buffered state
# --------------------------------------------------------------------- #


def test_oom_on_sort_buffer(big_table):
    plan = LimitOp(SortOp(SeqScan(big_table, "t"), [(col("t.v"), True)]), 5)
    with pytest.raises(OutOfMemoryError):
        execute_plan(plan, memory_budget_rows=10_000, spill=False)


def test_oom_on_hash_build(big_table):
    small = make_table([(i, i) for i in range(10)])
    join = HashJoin(SeqScan(small, "l"), SeqScan(big_table, "r"), ["l.v"], ["r.v"])
    with pytest.raises(OutOfMemoryError):
        execute_plan(LimitOp(join, 5), memory_budget_rows=10_000, spill=False)


def test_oom_on_materialization_barrier(big_table):
    plan = MaterializeOp(SeqScan(big_table, "t"))
    with pytest.raises(OutOfMemoryError):
        execute_plan(plan, memory_budget_rows=10_000, spill=False)


def test_oom_on_result_buffer(big_table):
    with pytest.raises(OutOfMemoryError):
        execute_plan(SeqScan(big_table, "t"), memory_budget_rows=10_000, spill=False)


# --------------------------------------------------------------------- #
# TopK
# --------------------------------------------------------------------- #


def test_topk_matches_sort_limit_including_ties():
    random.seed(7)
    rows = [(i, random.randrange(20)) for i in range(5_000)]
    table = make_table(rows)
    keys = [(col("t.v"), False), (col("t.id"), True)]
    topk = execute_plan(TopKOp(SeqScan(table, "t"), keys, 17))
    full = execute_plan(LimitOp(SortOp(SeqScan(table, "t"), keys), 17))
    # Exact row-for-row equality: ties resolve by arrival order in both.
    assert topk.rows == full.rows
    # TopK buffers O(k), a full sort buffers everything.
    assert topk.peak_buffered_rows < full.peak_buffered_rows


def test_topk_with_nulls_and_short_input():
    table = make_table([(1, None), (2, 3), (3, 1), (4, 3)])
    keys = [(col("t.v"), False), (col("t.id"), True)]
    topk = execute_plan(TopKOp(SeqScan(table, "t"), keys, 10))
    full = execute_plan(SortOp(SeqScan(table, "t"), keys))
    assert topk.rows == full.rows  # k > n degrades to a plain sort
    assert [r[0] for r in topk.rows] == [2, 4, 3, 1]


def test_planner_fuses_order_by_limit_into_topk(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    optimized = framework.optimize(_ranked_query(limit=2))
    assert "TOPK 2" in optimized.explain()
    assert "SORT" not in optimized.explain()


# --------------------------------------------------------------------- #
# converged vs graph-agnostic parity on the shared fixture
# --------------------------------------------------------------------- #


def _ranked_query(limit: int | None = None) -> SPJMQuery:
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .edge("a", "b", "Knows", name="k")
        .build()
    )
    return SPJMQuery(
        graph_table=GraphTableClause(
            "G",
            pattern,
            [MatchColumn("a", "name", "a_name"), MatchColumn("b", "name", "b_name")],
        ),
        projections=[(col("g.a_name"), "a_name"), (col("g.b_name"), "b_name")],
        order_by=[(col("a_name"), True), (col("b_name"), True)],
        limit=limit,
    )


@pytest.mark.parametrize("limit", [None, 3])
def test_converged_and_agnostic_agree_on_streamed_results(fig2, limit):
    catalog, _, _ = fig2
    reference = None
    for config in (
        RelGoConfig(),
        RelGoConfig(graph_aware=False, use_graph_index=False),
        RelGoConfig(graph_aware=False, use_graph_index=True),
        RelGoConfig(use_graph_index=False),
    ):
        framework = RelGoFramework(catalog, "G", config)
        framework.prepare()
        result, _ = framework.run(_ranked_query(limit=limit))
        if reference is None:
            reference = result.sorted_rows()
        else:
            assert result.sorted_rows() == reference


def test_execute_iter_streams_batches(fig2):
    catalog, _, _ = fig2
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    optimized = framework.optimize(_ranked_query())
    rows = [row for batch in framework.execute_iter(optimized) for row in batch]
    assert sorted(rows) == framework.execute(optimized).sorted_rows()


# --------------------------------------------------------------------- #
# Table.extend bulk fast-path
# --------------------------------------------------------------------- #


def test_bulk_extend_matches_append():
    a = make_table([])
    b = make_table([])
    rows = [(i, i * 2) for i in range(100)]
    for row in rows:
        a.append(row)
    b.extend(rows)
    assert a.columns == b.columns
    assert b.pk_lookup(42) == 42  # pk index rebuilt after the bulk load


def test_bulk_extend_validates():
    table = make_table([])
    with pytest.raises(SchemaError):
        table.extend([(1, 2), (2, "nope")])
    with pytest.raises(SchemaError):
        table.extend([(1, 2, 3)])
    # A failed bulk load must not leave ragged columns behind.
    assert table.num_rows == 0
    assert len(table.column("id")) == len(table.column("v")) == 0


def test_bulk_extend_coerces_types():
    schema = TableSchema("f", [Column("x", DataType.FLOAT)])
    table = Table(schema, rows=[(1,), (2.5,)])
    assert list(table.column("x")) == [1.0, 2.5]


# --------------------------------------------------------------------- #
# incremental pk-index maintenance
# --------------------------------------------------------------------- #


def test_pk_index_survives_interleaved_appends():
    table = make_table([(0, 0)])
    index_before = table.pk_index()
    for i in range(1, 50):
        table.append((i, i * 2))
        # The cached dict is maintained in place, not rebuilt from scratch.
        assert table.pk_index() is index_before
        assert table.pk_lookup(i) == i
    table.extend([(i, i) for i in range(50, 60)])
    assert table.pk_index() is index_before
    assert table.pk_lookup(57) == 57


def test_pk_index_duplicate_append_still_raises_lazily():
    table = make_table([(1, 1), (2, 2)])
    table.pk_index()
    table.append((1, 9))  # duplicate key: accepted, like the lazy path
    with pytest.raises(SchemaError):
        table.pk_index()


# --------------------------------------------------------------------- #
# adaptive expansion batch sizing
# --------------------------------------------------------------------- #


def test_expansion_batch_size_shrinks_with_fanout():
    from repro.exec import ExecutionContext

    ctx = ExecutionContext()
    assert ctx.expansion_batch_size(100, 100) == ctx.batch_size
    assert ctx.expansion_batch_size(100, 50) == ctx.batch_size
    # 10x fan-out: target shrinks ~10x, never below the floor.
    assert ctx.expansion_batch_size(100, 1000) == ctx.batch_size // 10
    assert ctx.expansion_batch_size(1, 10_000_000) == ctx.min_batch_size
    ctx.adaptive_batch_sizing = False
    assert ctx.expansion_batch_size(100, 1000) == ctx.batch_size
    # A batch_size below the floor is itself the floor: adaptation must
    # never hand back chunks larger than the configured ceiling.
    from repro.exec import ExecutionContext as Ctx

    tiny = Ctx(batch_size=8)
    assert tiny.expansion_batch_size(10, 1000) == 8
    assert tiny.expansion_batch_size(10, 11) == 8


def test_adaptive_sizing_bounds_inflight_chunks_without_changing_results(fig2):
    catalog, mapping, index = fig2
    from repro.exec import ExecutionContext
    from repro.graph.physical import Expand, ScanVertex

    def run(adaptive: bool):
        plan = Expand(
            ScanVertex(mapping, "a", "Person"),
            index,
            mapping,
            "a",
            "b",
            "Person",
            "Knows",
            "out",
        )
        ctx = ExecutionContext(batch_size=4, adaptive_batch_sizing=adaptive)
        return sorted(row for batch in plan.batches(ctx) for row in batch)

    assert run(True) == run(False)
