"""Columnar runtime correctness.

Two halves:

* **Workload parity** — executing the same optimized physical plan through
  the columnar protocol and the row protocol must return byte-identical
  ``sorted_rows()`` (and identical ``rows_produced``) across the LDBC and
  JOB workload queries, for converged and graph-agnostic plans alike — and
  it must hold under every **storage backend**: numpy-accelerated typed
  storage, the pure-Python ``array.array`` backend (numpy disabled), and
  the plain-list fallback.
* **Selection-vector unit tests** — :class:`repro.exec.ColumnarBatch` edge
  cases (empty selection, the all-selected fast path, selection
  composition) and NULL-key join semantics, plus the numpy-accelerated
  gather path when numpy is importable.
"""

from __future__ import annotations

import pytest

from repro.core.sqlpgq import parse_and_bind
from repro.exec import (
    ColumnarBatch,
    ExecutionContext,
    execute_plan,
    numpy_available,
    set_numpy_enabled,
)
from repro.exec.kernels import (
    build_hash_table_columnar,
    key_columns,
    probe_hash_table_columnar,
    rows_to_columnar,
)
from repro.graph.index import build_graph_index
from repro.relational.column import set_storage_backend
from repro.relational.expr import and_, col, compile_predicate_columnar, gt, lit, lt
from repro.systems import make_system
from repro.workloads.job import JobParams, generate_imdb
from repro.workloads.job.queries import job_queries
from repro.workloads.ldbc import LdbcParams, generate_ldbc
from repro.workloads.ldbc.queries import ic_queries, qc_queries, qr_queries


# --------------------------------------------------------------------- #
# workload parity (x storage backends)
# --------------------------------------------------------------------- #

# Each backend builds its own catalogs and runs every parity query under
# its storage/acceleration combination:
#   dict  — dictionary-encoded string columns over typed buffers with
#           ndarray code views (the default backend; string predicates,
#           joins and grouping run on int codes);
#   numpy — typed array.array storage with strings as plain lists and
#           ndarray vector views (the pre-dictionary fast path, still the
#           REPRO_STORAGE=typed opt-out);
#   array — the same typed storage with numpy disabled (pure-Python
#           fallbacks over C buffers);
#   list  — plain-list storage, numpy disabled (the reference semantics).
STORAGE_BACKENDS = ["dict", "numpy", "array", "list"]

_BACKEND_OF_MODE = {"dict": "dict", "numpy": "typed", "array": "typed", "list": "list"}


@pytest.fixture(scope="module", params=STORAGE_BACKENDS)
def storage_backend(request):
    mode = request.param
    if mode in ("dict", "numpy") and not numpy_available():
        pytest.skip("numpy not installed")
    set_numpy_enabled(mode in ("dict", "numpy"))
    set_storage_backend(_BACKEND_OF_MODE[mode])
    yield mode
    set_numpy_enabled(None)
    set_storage_backend(None)


@pytest.fixture(scope="module")
def ldbc_small(storage_backend):
    catalog, mapping = generate_ldbc(LdbcParams.scaled(0.3, seed=5))
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog


@pytest.fixture(scope="module")
def imdb_small(storage_backend):
    catalog, mapping = generate_imdb(JobParams.scaled(0.3, seed=5))
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog


def _assert_parity(system, catalog, queries: dict[str, str]) -> None:
    for name, sql in queries.items():
        query = parse_and_bind(sql, catalog)
        optimized = system.optimize(query)
        columnar = execute_plan(optimized.physical, columnar=True)
        row = execute_plan(optimized.physical, columnar=False)
        assert columnar.sorted_rows() == row.sorted_rows(), name
        assert columnar.rows_produced == row.rows_produced, name


# The system variants cover every ported operator family: relgo (Expand /
# ExpandIntersect / TopK), relgo_noei (PatternHashJoin star plans),
# relgo_hash (EdgeTripleScan's runtime EVJoin), duckdb (SeqScan / FilterOp /
# HashJoin / Aggregate pipelines), graindb (RowIdJoin / CsrJoin predefined
# joins), kuzu (closing expansions + materialization barriers).
LDBC_SYSTEMS = ["relgo", "relgo_noei", "relgo_hash", "duckdb", "graindb", "kuzu"]


@pytest.mark.parametrize("system_name", LDBC_SYSTEMS)
def test_ldbc_workload_parity(ldbc_small, system_name):
    system = make_system(system_name, ldbc_small, "snb")
    queries = {**ic_queries(), **qr_queries(), **qc_queries()}
    _assert_parity(system, ldbc_small, queries)


@pytest.mark.parametrize("system_name", ["relgo", "duckdb", "graindb"])
def test_job_workload_parity(imdb_small, system_name):
    system = make_system(system_name, imdb_small, "imdb")
    subset = ["JOB1", "JOB6", "JOB13", "JOB17", "JOB22", "JOB28", "JOB33"]
    _assert_parity(system, imdb_small, job_queries(subset))


# --------------------------------------------------------------------- #
# ColumnarBatch / selection-vector edge cases
# --------------------------------------------------------------------- #


def test_from_rows_to_rows_round_trip():
    rows = [(1, "a"), (2, None), (3, "c")]
    cb = ColumnarBatch.from_rows(rows)
    assert cb.to_rows() == rows
    assert len(cb) == 3 and cb.width == 2


def test_zero_width_rows_survive_the_boundary():
    rows = [(), (), ()]
    cb = ColumnarBatch.from_rows(rows)
    assert len(cb) == 3
    assert cb.to_rows() == rows


def test_empty_selection_yields_no_rows():
    cb = ColumnarBatch([[10, 20, 30]], 3, [])
    assert len(cb) == 0
    assert cb.to_rows() == []
    assert cb.column(0) == []


def test_take_composes_selections():
    cb = ColumnarBatch([[0, 10, 20, 30, 40]], 5, [4, 2, 0])
    assert cb.to_rows() == [(40,), (20,), (0,)]
    taken = cb.take([2, 0])
    assert taken.to_rows() == [(0,), (40,)]
    assert taken.take([]).to_rows() == []


def test_head_is_zero_copy_prefix():
    cb = ColumnarBatch([list(range(10))], 10)
    head = cb.head(3)
    assert head.to_rows() == [(0,), (1,), (2,)]
    assert head.columns[0] is cb.columns[0]
    assert cb.head(99) is cb


def test_all_selected_fast_path_returns_input_selection():
    column = [1, 5, 9]
    layout = {"v": 0}
    pred = compile_predicate_columnar(gt(col("v"), lit(0)), layout)
    # All rows pass: the input selection object itself comes back.
    sel = [0, 1, 2]
    assert pred([column], sel, 3) is sel
    assert pred([column], None, 3) is None
    # A partial pass returns a fresh refined selection.
    partial = compile_predicate_columnar(gt(col("v"), lit(4)), layout)
    assert partial([column], None, 3) == [1, 2]
    assert partial([column], [2, 0], 3) == [2]


def test_comparison_with_computed_operand_uses_generic_fallback():
    # Comparisons whose operands are not plain column/literal shapes must
    # fall through to the row-wise fallback, not crash (regression test).
    from repro.relational.expr import Arith

    layout = {"v": 0}
    pred = compile_predicate_columnar(
        gt(Arith("+", col("v"), lit(1)), lit(4)), layout
    )
    assert pred([[1, 4, 9]], None, 3) == [1, 2]
    assert pred([[1, 4, 9]], [0, 2], 3) == [2]


def test_conjunction_refines_left_to_right_with_null_semantics():
    values = [2, None, 8, 4]
    layout = {"v": 0}
    pred = compile_predicate_columnar(
        and_(gt(col("v"), lit(1)), lt(col("v"), lit(5))), layout
    )
    # NULL comparisons are NULL -> filtered out, matching WHERE semantics.
    assert pred([values], None, 4) == [0, 3]


def test_null_keys_never_join():
    left = rows_to_columnar([[(None, "l0"), (1, "l1"), (2, "l2")]])
    right = rows_to_columnar([[(None, "r0"), (1, "r1")]])
    table = build_hash_table_columnar(right, [0], None)
    assert None not in table
    ctx = ExecutionContext()
    out = [
        row
        for cb in probe_hash_table_columnar(left, table, [0], ctx)
        for row in cb.to_rows()
    ]
    assert out == [(1, "l1", 1, "r1")]


def test_multi_column_keys_collapse_on_any_null():
    cb = ColumnarBatch.from_rows([(1, 2), (1, None), (None, 2)])
    assert key_columns(cb, [0, 1]) == [(1, 2), None, None]


# --------------------------------------------------------------------- #
# numpy-accelerated path
# --------------------------------------------------------------------- #


needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


@needs_numpy
def test_numpy_gather_returns_plain_python_values():
    import numpy as np

    try:
        set_numpy_enabled(True)
        cb = ColumnarBatch([np.arange(100, 110)], 10, [3, 0, 7])
        values = cb.column(0)
        assert values == [103, 100, 107]
        assert all(type(v) is int for v in values)
        assert all(type(v) is int for row in cb.to_rows() for v in row)
    finally:
        set_numpy_enabled(None)


@needs_numpy
def test_numpy_selection_matches_pure_python():
    import numpy as np

    data = [3, -1, 7, 0, 12, -5, 7]
    layout = {"v": 0}
    pred = compile_predicate_columnar(gt(col("v"), lit(2)), layout)
    expected = pred([data], None, len(data))
    try:
        set_numpy_enabled(True)
        accelerated = pred([np.asarray(data)], None, len(data))
        assert list(accelerated) == list(expected)
        partial = pred([np.asarray(data)], [1, 2, 4], len(data))
        assert list(partial) == [2, 4]
    finally:
        set_numpy_enabled(None)


@needs_numpy
def test_scalar_expand_fallback_feeds_vectorized_closing_expand(fig2):
    # A LIKE-shaped edge predicate has no numpy mask, so the first Expand
    # takes the scalar walk; its output column must hold plain Python ints
    # (never numpy scalars) and must compose with the vectorized closing
    # Expand downstream (regression: TypeError at bounds[parents], and
    # np.int64 leaking into row tuples).
    from repro.exec import ExecutionContext
    from repro.graph.physical import Expand, ScanVertex
    from repro.relational.expr import col, starts_with

    catalog, mapping, index = fig2
    try:
        set_numpy_enabled(True)
        open_hop = Expand(
            ScanVertex(mapping, "a", "Person"),
            index,
            mapping,
            "a",
            "b",
            "Person",
            "Knows",
            "out",
            edge_predicate=starts_with(col("date"), "2023-01"),
        )
        closing = Expand(
            open_hop,
            index,
            mapping,
            "b",
            "a",
            "Person",
            "Knows",
            "out",
            closing=True,
        )
        columnar = [
            row
            for cb in closing.columnar_batches(ExecutionContext())
            for row in cb.to_rows()
        ]
        rows = [
            row for batch in closing.batches(ExecutionContext()) for row in batch
        ]
        assert sorted(columnar) == sorted(rows)
        assert columnar, "the pattern must match something"
        assert all(type(v) is int for row in columnar for v in row)
    finally:
        set_numpy_enabled(None)


@needs_numpy
def test_numpy_disabled_falls_back_to_pure_python():
    import numpy as np

    try:
        set_numpy_enabled(False)
        cb = ColumnarBatch([np.arange(5)], 5, [4, 1])
        assert cb.to_rows() == [(4,), (1,)]
    finally:
        set_numpy_enabled(None)
