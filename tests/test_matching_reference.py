"""Ground-truth tests for the reference matcher on the Fig. 2 graph."""

from __future__ import annotations

from repro.graph.matching import (
    EDGE_DISTINCT,
    HOMOMORPHISM,
    ISOMORPHISM,
    count_matches,
    match_pattern,
)
from repro.graph.pattern import PatternGraph
from repro.relational.expr import col, eq, gt, lit


def triangle_pattern(p1_pred=None):
    """The paper's pattern P: (p1)-[Knows]->(p2), (p1)-[Likes]->(m), (p2)-[Likes]->(m)."""
    return (
        PatternGraph.builder()
        .vertex("p1", "Person", predicate=p1_pred)
        .vertex("p2", "Person")
        .vertex("m", "Message")
        .edge("p1", "p2", "Knows", name="k")
        .edge("p1", "m", "Likes", name="l1")
        .edge("p2", "m", "Likes", name="l2")
        .build()
    )


def test_single_vertex_pattern(fig2):
    _, mapping, index = fig2
    pattern = PatternGraph.builder().vertex("p", "Person").build()
    matches = match_pattern(mapping, index, pattern)
    assert sorted(b["p"] for b in matches) == [0, 1, 2]


def test_single_vertex_with_predicate(fig2):
    _, mapping, index = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("p", "Person", predicate=eq(col("name"), lit("Tom")))
        .build()
    )
    matches = match_pattern(mapping, index, pattern)
    assert [b["p"] for b in matches] == [0]


def test_single_edge_knows(fig2):
    _, mapping, index = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .edge("a", "b", "Knows", name="k")
        .build()
    )
    matches = match_pattern(mapping, index, pattern)
    # The Knows table has 4 tuples; every one matches.
    assert len(matches) == 4
    pairs = sorted((b["a"], b["b"]) for b in matches)
    assert pairs == [(0, 1), (1, 0), (1, 2), (2, 1)]


def test_triangle_matches_fig2(fig2):
    """Fig 2(b): exactly four homomorphic matches of the triangle pattern."""
    _, mapping, index = fig2
    matches = match_pattern(mapping, index, triangle_pattern())
    assert len(matches) == 4
    keyed = sorted((b["p1"], b["p2"], b["m"]) for b in matches)
    # Persons are rowids 0=Tom, 1=Bob, 2=David; messages 0=m1, 1=m2.
    assert keyed == [(0, 1, 0), (1, 0, 0), (1, 2, 1), (2, 1, 1)]


def test_triangle_with_tom_filter(fig2):
    _, mapping, index = fig2
    pattern = triangle_pattern(p1_pred=eq(col("name"), lit("Tom")))
    matches = match_pattern(mapping, index, pattern)
    assert [(b["p1"], b["p2"], b["m"]) for b in matches] == [(0, 1, 0)]


def test_edge_predicate(fig2):
    _, mapping, index = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("p", "Person")
        .vertex("m", "Message")
        .edge("p", "m", "Likes", name="l", predicate=gt(col("date"), lit("2024-03-25")))
        .build()
    )
    matches = match_pattern(mapping, index, pattern)
    # Only likes rows with date > 2024-03-25: rows 0 and 1.
    assert sorted(b["l"] for b in matches) == [0, 1]


def test_direction_respected(fig2):
    _, mapping, index = fig2
    # Likes edges point Person -> Message; reversed pattern finds nothing
    # because no edge label maps Message -> Person.
    pattern = (
        PatternGraph.builder()
        .vertex("m", "Message")
        .vertex("p", "Person")
        .edge("m", "p", "Likes", name="l")
        .build()
    )
    assert count_matches(mapping, index, pattern) == 0


def test_homomorphism_allows_repeats(fig2):
    """(a)-[Knows]->(b)-[Knows]->(c) allows a == c under homomorphism."""
    _, mapping, index = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .vertex("c", "Person")
        .edge("a", "b", "Knows")
        .edge("b", "c", "Knows")
        .build()
    )
    hom = match_pattern(mapping, index, pattern, HOMOMORPHISM)
    iso = match_pattern(mapping, index, pattern, ISOMORPHISM)
    # Paths: 0->1->0, 0->1->2, 1->0->1, 1->2->1, 2->1->0, 2->1->2
    assert len(hom) == 6
    assert len(iso) == 2
    assert all(b["a"] != b["c"] for b in iso)


def test_edge_distinct_semantics(fig2):
    _, mapping, index = fig2
    # (a)-[k1:Knows]->(b), (b)-[k2:Knows]->(a): homomorphism happily maps
    # k1 and k2 to pairs of mutual edges; edges are distinct tuples here, so
    # edge-distinct keeps all of them.
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .edge("a", "b", "Knows", name="k1")
        .edge("b", "a", "Knows", name="k2")
        .build()
    )
    hom = match_pattern(mapping, index, pattern, HOMOMORPHISM)
    edge_distinct = match_pattern(mapping, index, pattern, EDGE_DISTINCT)
    assert len(hom) == 4  # (0,1),(1,0),(1,2),(2,1) each close one way
    assert len(edge_distinct) == 4
    assert all(b["k1"] != b["k2"] for b in edge_distinct)


def test_count_is_len(fig2):
    _, mapping, index = fig2
    assert count_matches(mapping, index, triangle_pattern()) == 4
