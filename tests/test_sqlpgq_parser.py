"""SQL/PGQ frontend: lexing, parsing, binding, and end-to-end execution of
the paper's Fig. 1 query text."""

from __future__ import annotations

import pytest

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.sqlpgq import parse_and_bind, parse_statement
from repro.core.sqlpgq.binder import execute_ddl
from repro.errors import BindError, ParseError, UnsupportedFeatureError
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

from tests.conftest import build_fig2_catalog

FIG1_SQL = """
SELECT p2_name, p.name AS place_name
FROM GRAPH_TABLE (G
  MATCH (p1:Person)-[:Likes]->(m:Message),
        (p2:Person)-[:Likes]->(m),
        (p1)-[:Knows]->(p2)
  COLUMNS (p1.name AS p1_name,
           p1.place_id AS p1_place_id,
           p2.name AS p2_name)
) g JOIN Place p ON g.p1_place_id = p.id
WHERE g.p1_name = 'Tom';
"""


def test_parse_fig1_structure():
    ast = parse_statement(FIG1_SQL)
    gt = ast.graph_table
    assert gt is not None
    assert gt.graph_name == "G"
    assert len(gt.paths) == 3
    assert [c.alias for c in gt.columns] == ["p1_name", "p1_place_id", "p2_name"]
    assert gt.alias == "g"
    assert len(ast.tables) == 1 and ast.tables[0].alias == "p"
    assert len(ast.join_conditions) == 1
    assert ast.where is not None


def test_bind_fig1_pattern(fig2):
    catalog, _, _ = fig2
    query = parse_and_bind(FIG1_SQL, catalog)
    clause = query.graph_table
    assert clause is not None
    pattern = clause.pattern
    assert sorted(pattern.vertices) == ["m", "p1", "p2"]
    assert pattern.num_edges == 3
    labels = sorted(e.label for e in pattern.edges.values())
    assert labels == ["Knows", "Likes", "Likes"]


def test_fig1_executes_correctly(fig2):
    catalog, _, _ = fig2
    query = parse_and_bind(FIG1_SQL, catalog)
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    result, _ = framework.run(query)
    assert result.sorted_rows() == [("Bob", "Germany")]


def test_fig1_agnostic_equals_converged(fig2):
    catalog, _, _ = fig2
    query = parse_and_bind(FIG1_SQL, catalog)
    converged = RelGoFramework(catalog, "G", RelGoConfig())
    converged.prepare()
    agnostic = RelGoFramework(
        catalog, "G", RelGoConfig(graph_aware=False, use_graph_index=False)
    )
    r1, _ = converged.run(query)
    r2, _ = agnostic.run(query)
    assert r1.sorted_rows() == r2.sorted_rows()


def test_in_clause_where_becomes_constraint(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a:Person)-[k:Knows]->(b:Person)
      WHERE a.name = 'Tom' AND k.date >= '2023-01-01'
      COLUMNS (b.name AS n)) g
    """
    query = parse_and_bind(sql, catalog)
    pattern = query.graph_table.pattern
    assert pattern.vertices["a"].predicate is not None
    assert pattern.edges["k"].predicate is not None
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    result, _ = framework.run(query)
    assert result.rows == [("Bob",)]


def test_label_inference_from_edge(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a)-[:Knows]->(b)
      COLUMNS (b.name AS n)) g
    """
    query = parse_and_bind(sql, catalog)
    pattern = query.graph_table.pattern
    assert pattern.vertices["a"].label == "Person"
    assert pattern.vertices["b"].label == "Person"


def test_edge_label_inference_unique(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT c FROM GRAPH_TABLE (G
      MATCH (a:Person)-[e]->(b:Message)
      COLUMNS (b.content AS c)) g
    """
    query = parse_and_bind(sql, catalog)
    assert query.graph_table.pattern.edges["e"].label == "Likes"


def test_incoming_edge_direction(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (m:Message)<-[:Likes]-(p:Person)
      COLUMNS (p.name AS n, m.content AS c)) g
    """
    query = parse_and_bind(sql, catalog)
    edge = next(iter(query.graph_table.pattern.edges.values()))
    assert edge.src == "p" and edge.dst == "m"


def test_aggregate_and_order_by(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT g.n AS n, COUNT(*) AS c FROM GRAPH_TABLE (G
      MATCH (a:Person)-[:Likes]->(m:Message)
      COLUMNS (a.name AS n)) g
    GROUP BY g.n ORDER BY c DESC, n ASC LIMIT 2
    """
    query = parse_and_bind(sql, catalog)
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    result, _ = framework.run(query)
    assert result.rows == [("Bob", 2), ("David", 1)]


def test_id_and_label_columns(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT g.pid AS pid, g.lbl AS lbl FROM GRAPH_TABLE (G
      MATCH (a:Person)
      COLUMNS (ID(a) AS pid, LABEL(a) AS lbl)) g
    """
    query = parse_and_bind(sql, catalog)
    framework = RelGoFramework(catalog, "G", RelGoConfig())
    framework.prepare()
    result, _ = framework.run(query)
    assert sorted(result.rows) == [(1, "Person"), (2, "Person"), (3, "Person")]


def test_create_property_graph_ddl():
    catalog, _ = build_fig2_catalog()
    fresh = Catalog()
    # Rebuild the same base tables in a fresh catalog without a graph.
    for name in ("Person", "Message", "Likes", "Knows", "Place"):
        src = catalog.table(name)
        fresh.create_table(src.schema, rows=list(src.iter_rows()))
    ddl = """
    CREATE PROPERTY GRAPH G2
    VERTEX TABLES (
      Person PROPERTIES (person_id, name, place_id),
      Message PROPERTIES (message_id, content)
    )
    EDGE TABLES (
      Likes SOURCE KEY (pid) REFERENCES Person (person_id)
            DESTINATION KEY (mid) REFERENCES Message (message_id)
            PROPERTIES (date),
      Knows SOURCE KEY (pid1) REFERENCES Person (person_id)
            DESTINATION KEY (pid2) REFERENCES Person (person_id)
    )
    """
    statement = parse_statement(ddl)
    mapping = execute_ddl(statement, fresh)
    assert sorted(mapping.vertices) == ["Message", "Person"]
    assert sorted(mapping.edges) == ["Knows", "Likes"]
    mapping.validate()


def test_parse_error_reports_location():
    with pytest.raises(ParseError):
        parse_statement("SELECT FROM")


def test_unknown_graph_raises(fig2):
    catalog, _, _ = fig2
    with pytest.raises(Exception):
        parse_and_bind(
            "SELECT x FROM GRAPH_TABLE (NoSuchGraph MATCH (a:Person) "
            "COLUMNS (a.name AS x)) g",
            catalog,
        )


def test_multi_var_in_clause_where_rejected(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a:Person)-[:Knows]->(b:Person)
      WHERE a.name = b.name
      COLUMNS (b.name AS n)) g
    """
    with pytest.raises(UnsupportedFeatureError):
        parse_and_bind(sql, catalog)


def test_disconnected_pattern_rejected(fig2):
    catalog, _, _ = fig2
    sql = """
    SELECT n FROM GRAPH_TABLE (G
      MATCH (a:Person), (b:Message)
      COLUMNS (a.name AS n)) g
    """
    with pytest.raises(Exception):
        parse_and_bind(sql, catalog)
