"""Typed table storage: backend selection, promotion, vector views, and the
pk-index bulk-extend semantics.

Pins the typed-storage contract of `repro.relational.column` /
`repro.relational.table`:

* INT/FLOAT columns live in ``array.array`` buffers under the typed
  backend, plain lists under the list backend — with identical values and
  row tuples either way;
* a NULL or a value a typed buffer cannot hold promotes the column to the
  object (list) fallback without losing data;
* ``Table.vector`` exposes cached ndarray copies that never lock the
  storage against further appends;
* ``extend``/``append`` keep the lazy duplicate-primary-key semantics and
  never leave a previously returned pk-index dict partially updated.
"""

from __future__ import annotations

from array import array

import pytest

from repro.errors import SchemaError
from repro.exec import numpy_available, set_numpy_enabled
from repro.relational.column import (
    extend_values,
    make_storage,
    set_storage_backend,
    storage_backend,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType


def make_schema() -> TableSchema:
    return TableSchema(
        "t",
        [
            Column("id", DataType.INT),
            Column("score", DataType.FLOAT),
            Column("name", DataType.STRING),
            Column("day", DataType.DATE),
        ],
        primary_key="id",
    )


ROWS = [
    (0, 1.5, "a", "2024-01-01"),
    (1, 2.5, "b", "2023-06-30"),
    (2, 0.0, "c", "2022-12-31"),
]


# --------------------------------------------------------------------- #
# backend selection
# --------------------------------------------------------------------- #


@pytest.fixture()
def typed_backend():
    """Force the typed backend (the suite may run under REPRO_STORAGE=list)."""
    set_storage_backend("typed")
    yield
    set_storage_backend(None)


def test_typed_backend_selects_storage_from_dtype(typed_backend):
    table = Table(make_schema(), rows=ROWS)
    assert isinstance(table.column("id"), array)
    assert table.column("id").typecode == "q"
    assert isinstance(table.column("score"), array)
    assert table.column("score").typecode == "d"
    assert type(table.column("name")) is list
    assert type(table.column("day")) is list


def test_list_backend_forces_plain_lists():
    set_storage_backend("list")
    try:
        assert storage_backend() == "list"
        table = Table(make_schema(), rows=ROWS)
        assert type(table.column("id")) is list
        assert type(table.column("score")) is list
    finally:
        set_storage_backend(None)


def test_backends_produce_identical_rows():
    typed = Table(make_schema(), rows=ROWS)
    set_storage_backend("list")
    try:
        plain = Table(make_schema(), rows=ROWS)
    finally:
        set_storage_backend(None)
    assert list(typed.iter_rows()) == list(plain.iter_rows())
    assert [typed.row(i) for i in range(3)] == [plain.row(i) for i in range(3)]
    # Typed storage indexes/slices to plain Python values.
    assert type(typed.value(0, "id")) is int
    assert type(typed.value(0, "score")) is float
    assert list(typed.column("id")[1:3]) == [1, 2]


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        set_storage_backend("mmap")


# --------------------------------------------------------------------- #
# object-fallback promotion
# --------------------------------------------------------------------- #


def test_null_append_promotes_to_object_fallback(typed_backend):
    table = Table(make_schema(), rows=ROWS)
    table.append((3, None, None, None))
    assert type(table.column("score")) is list
    assert table.row(3) == (3, None, None, None)
    # Pre-promotion values survive the storage change untouched.
    assert table.row(1) == ROWS[1]
    # The id column saw no NULL and stays typed.
    assert isinstance(table.column("id"), array)


def test_mixed_type_bulk_load_promotes_mid_batch(typed_backend):
    # validate=False loads bypass dtype checks; a value the C buffer cannot
    # hold must still land intact via promotion, even mid-extend.
    table = Table(make_schema())
    rows = [(0, 1.0, "a", "2024-01-01"), ("zero", 2.0, "b", "2024-01-02")]
    table.extend(rows, validate=False)
    assert type(table.column("id")) is list
    assert list(table.column("id")) == [0, "zero"]
    assert table.num_rows == 2


def test_extend_values_promotion_keeps_consumed_prefix_exact(typed_backend):
    storage = make_storage(DataType.INT)
    storage.extend([1, 2, 3])
    # array.extend consumes its input incrementally; the promotion must not
    # duplicate the prefix consumed before the failing value.
    promoted = extend_values(storage, [4, 5, None, 7])
    assert promoted == [1, 2, 3, 4, 5, None, 7]


def test_huge_int_promotes_instead_of_overflowing(typed_backend):
    table = Table(TableSchema("h", [Column("x", DataType.INT)]))
    table.append((2**70,))
    table.append((5,))
    assert list(table.column("x")) == [2**70, 5]
    assert type(table.column("x")) is list


def test_typed_float_column_coerces_ints_like_validation_does(typed_backend):
    # array('d') stores every value as a C double, which is exactly what
    # DataType.FLOAT.validate coerces to — unvalidated int loads therefore
    # behave as if validated.
    table = Table(TableSchema("f", [Column("x", DataType.FLOAT)]))
    table.extend([(1,), (2.5,)], validate=False)
    assert list(table.column("x")) == [1.0, 2.5]


def test_validation_errors_still_raise_before_storage():
    table = Table(make_schema())
    with pytest.raises(SchemaError):
        table.append(("not-an-int", 1.0, "a", "2024-01-01"))
    assert table.num_rows == 0


# --------------------------------------------------------------------- #
# vector views
# --------------------------------------------------------------------- #

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


@needs_numpy
def test_vector_views_are_ndarrays_for_clean_columns():
    import numpy as np

    table = Table(make_schema(), rows=ROWS)
    ids = table.vector("id")
    assert isinstance(ids, np.ndarray) and ids.dtype.kind == "i"
    assert ids.tolist() == [0, 1, 2]
    days = table.vector("day")
    assert isinstance(days, np.ndarray) and days.dtype.kind == "U"
    # The view is cached until the next append.
    assert table.vector("id") is ids


@needs_numpy
def test_vector_view_never_locks_storage_against_appends():
    table = Table(make_schema(), rows=ROWS)
    view = table.vector("id")
    table.append((3, 3.5, "d", "2021-01-01"))  # must not raise BufferError
    assert view.tolist() == [0, 1, 2]  # the old copy is unaffected
    assert table.vector("id").tolist() == [0, 1, 2, 3]


@needs_numpy
def test_vector_view_falls_back_for_null_bearing_columns():
    table = Table(make_schema(), rows=ROWS)
    table.append((3, None, None, None))
    # The promoted object column has no clean ndarray representation.
    assert type(table.vector("score")) is list


@needs_numpy
def test_vector_view_rejects_lossy_int_to_float_conversion():
    # 2**63 + 1 overflows int64; numpy would coerce the list to float64
    # and silently round the value — the view must decline instead.
    table = Table(TableSchema("h", [Column("x", DataType.INT)]))
    table.extend([(2**63 + 1,), (5,)])
    assert type(table.vector("x")) is list
    assert list(table.vector("x")) == [2**63 + 1, 5]


@needs_numpy
def test_vector_view_rejects_nul_and_oversized_strings():
    from repro.exec.vector import vector_view

    # '<U' arrays truncate at NULs and pay 4 * max_len bytes per row:
    # both shapes must stay as plain lists.
    assert vector_view(["abc\x00", "de"]) == ["abc\x00", "de"]
    assert type(vector_view(["x" * 10_000, "y"])) is list
    import numpy as np

    assert isinstance(vector_view(["abc", "de"]), np.ndarray)


@needs_numpy
def test_columnar_execution_exact_for_beyond_int64_values():
    from repro.exec import execute_plan
    from repro.relational.physical import SeqScan

    table = Table(TableSchema("h", [Column("x", DataType.INT)]))
    table.extend([(2**63 + 1,), (5,), (2**63 + 1,)])
    result = execute_plan(SeqScan(table, "t"), columnar=True)
    assert result.rows == [(2**63 + 1,), (5,), (2**63 + 1,)]
    assert all(type(v) is int for row in result.rows for v in row)


@needs_numpy
def test_rowid_join_predicate_branch_emits_python_ints():
    from repro.exec import execute_plan
    from repro.relational.expr import col, ge, lit
    from repro.relational.physical import RowIdJoin, SeqScan

    base = Table(
        TableSchema(
            "v", [Column("id", DataType.INT), Column("w", DataType.INT)]
        ),
        rows=[(i, i * 10) for i in range(6)],
    )
    scan = SeqScan(base, "a", emit_rowid=True)
    join = RowIdJoin(
        scan,
        "a._rowid",
        base,
        "b",
        predicate=ge(col("w"), lit(20)),
        emit_rowid=True,
    )
    result = execute_plan(join, columnar=True)
    assert len(result.rows) == 4
    # The ndarray pointer column goes through the predicate (list) branch;
    # every emitted value — including the rowid columns — must be a plain
    # Python int.
    assert all(type(v) is int for row in result.rows for v in row)


@needs_numpy
def test_vector_view_respects_numpy_toggle():
    table = Table(make_schema(), rows=ROWS)
    try:
        set_numpy_enabled(False)
        assert table.vector("id") is table.column("id")
    finally:
        set_numpy_enabled(None)


# --------------------------------------------------------------------- #
# pk-index maintenance (append/extend duplicate semantics)
# --------------------------------------------------------------------- #


def test_extend_duplicate_raises_lazily_with_rows_appended():
    table = Table(make_schema(), rows=ROWS)
    table.pk_index()  # prime the cache
    table.extend([(3, 0.0, "d", "2020-01-01"), (1, 0.0, "e", "2020-01-02")])
    # The rows are appended (storage first, indexing second) ...
    assert table.num_rows == 5
    # ... and the duplicate surfaces on the next pk_index() rebuild, exactly
    # like the lazy path reports it.
    with pytest.raises(SchemaError, match="duplicate primary key"):
        table.pk_index()


def test_extend_duplicate_leaves_shared_index_dict_unpolluted():
    table = Table(make_schema(), rows=ROWS)
    shared = table.pk_index()
    before = dict(shared)
    # Key 3 is fresh, key 0 duplicates an indexed row, key 9 follows the
    # duplicate: none of them may leak into the dict callers already hold.
    table.extend(
        [
            (3, 0.0, "d", "2020-01-01"),
            (0, 0.0, "e", "2020-01-02"),
            (9, 0.0, "f", "2020-01-03"),
        ]
    )
    assert shared == before


def test_extend_duplicate_within_batch_detected():
    table = Table(make_schema(), rows=ROWS)
    table.pk_index()
    table.extend([(7, 0.0, "d", "2020-01-01"), (7, 0.0, "e", "2020-01-02")])
    with pytest.raises(SchemaError, match="duplicate primary key"):
        table.pk_lookup(7)


def test_clean_extend_updates_cached_index_in_place():
    table = Table(make_schema(), rows=ROWS)
    shared = table.pk_index()
    table.extend([(3, 0.0, "d", "2020-01-01"), (4, 0.0, "e", "2020-01-02")])
    assert table.pk_index() is shared
    assert shared[3] == 3 and shared[4] == 4


def test_append_duplicate_still_raises_lazily():
    table = Table(make_schema(), rows=ROWS)
    table.pk_index()
    table.append((1, 9.0, "dup", "2020-01-01"))
    assert table.num_rows == 4
    with pytest.raises(SchemaError, match="duplicate primary key"):
        table.pk_index()


@needs_numpy
def test_columnar_topk_matches_row_path_with_nan_keys():
    # NaN sort keys poison numpy pivots/comparisons; the columnar TopK must
    # fall back to the decorated path and agree with the row protocol.
    import math

    from repro.exec import ExecutionContext
    from repro.relational.expr import col
    from repro.relational.physical import SeqScan, TopKOp

    nan = math.nan
    table = Table(
        TableSchema(
            "t", [Column("id", DataType.INT), Column("x", DataType.FLOAT)]
        ),
        rows=[
            (0, 1.0), (1, 2.0), (2, nan), (3, nan), (4, nan),
            (5, 3.0), (6, 4.0), (7, 5.0), (8, 0.5), (9, 7.0),
        ],
    )
    for ascending in (True, False):
        plan = TopKOp(SeqScan(table, "t"), [(col("x"), ascending)], 2)
        columnar = [
            row
            for cb in plan.columnar_batches(ExecutionContext())
            for row in cb.to_rows()
        ]
        rows = [row for b in plan.batches(ExecutionContext()) for row in b]
        assert len(columnar) == 2
        assert repr(columnar) == repr(rows)  # repr: NaN != NaN under ==


# --------------------------------------------------------------------- #
# column-major bulk loading (extend_columns)
# --------------------------------------------------------------------- #


def _columns_of(rows):
    return [list(c) for c in zip(*rows)]


def test_extend_columns_equivalent_to_extend():
    by_rows = Table(make_schema(), rows=ROWS)
    by_columns = Table(make_schema())
    by_columns.extend_columns(_columns_of(ROWS))
    assert list(by_rows.iter_rows()) == list(by_columns.iter_rows())
    for name in ("id", "score", "name", "day"):
        assert type(by_rows.column(name)) is type(by_columns.column(name))


def test_extend_columns_validates_and_rejects_bad_values():
    table = Table(make_schema())
    bad = _columns_of(ROWS)
    bad[1][1] = "not a float"
    with pytest.raises(SchemaError):
        table.extend_columns(bad)
    # Validation failed before any storage mutation: table stays empty.
    assert table.num_rows == 0


def test_extend_columns_rejects_wrong_column_count_and_ragged_input():
    table = Table(make_schema())
    with pytest.raises(SchemaError):
        table.extend_columns(_columns_of(ROWS)[:3])
    ragged = _columns_of(ROWS)
    ragged[2] = ragged[2][:2]
    with pytest.raises(SchemaError):
        table.extend_columns(ragged)
    assert table.num_rows == 0


def test_extend_columns_promotes_null_bearing_typed_column():
    table = Table(make_schema())
    columns = _columns_of(ROWS)
    columns[1][0] = None  # NULL in the FLOAT column
    table.extend_columns(columns)
    if storage_backend() == "typed":
        assert type(table.column("score")) is list
    assert table.value(0, "score") is None
    assert table.value(1, "score") == 2.5


def test_extend_columns_maintains_cached_pk_index():
    table = Table(make_schema(), rows=ROWS)
    index = table.pk_index()
    table.extend_columns(_columns_of([(3, 9.5, "d", "2020-01-01")]))
    assert index[3] == 3
    assert table.pk_lookup(3) == 3


def test_extend_columns_duplicate_pk_keeps_lazy_error_semantics():
    table = Table(make_schema(), rows=ROWS)
    index = table.pk_index()
    table.extend_columns(_columns_of([(1, 9.5, "d", "2020-01-01")]))
    # The shared dict is not polluted; the rebuild raises lazily.
    assert 1 in index and index[1] == 1
    with pytest.raises(SchemaError):
        table.pk_index()


def test_extend_columns_empty_is_a_no_op():
    table = Table(make_schema(), rows=ROWS)
    table.extend_columns([[], [], [], []])
    assert table.num_rows == len(ROWS)


# --------------------------------------------------------------------- #
# dictionary-encoded string columns (the default backend)
# --------------------------------------------------------------------- #


@pytest.fixture()
def dict_backend():
    set_storage_backend("dict")
    yield
    set_storage_backend(None)


def _string_table(rows_of_names, backend=None):
    schema = TableSchema(
        "s",
        [Column("id", DataType.INT), Column("name", DataType.STRING)],
        primary_key="id",
    )
    table = Table(schema)
    table.extend_columns(
        [list(range(len(rows_of_names))), list(rows_of_names)]
    )
    return table


def test_dict_backend_is_the_default_and_encodes_strings(dict_backend):
    from repro.relational.column import DictColumn

    assert storage_backend() == "dict"
    table = Table(make_schema(), rows=ROWS)
    name = table.column("name")
    assert isinstance(name, DictColumn)
    # Typed columns are unaffected; DATE stays a list (as under typed).
    assert isinstance(table.column("id"), array)
    assert type(table.column("day")) is list
    # Decoding round-trips: indexing, slicing, iteration, tolist.
    assert name[1] == "b" and list(name[0:2]) == ["a", "b"]
    assert list(name) == ["a", "b", "c"] == name.tolist()
    # Repeats share one dictionary entry.
    table.extend([(3, 0.0, "a", "2024-01-02"), (4, 0.0, "a", "2024-01-03")])
    assert len(name.values) == 3 and name.codes.tolist() == [0, 1, 2, 0, 0]


def test_dict_column_demotes_losslessly_on_null_and_non_string(dict_backend):
    table = _string_table(["x", "y", "x"])
    table.append((3, None), validate=False)
    assert type(table.column("name")) is list
    assert list(table.column("name")) == ["x", "y", "x", None]
    # Mixed-type unvalidated bulk load demotes mid-batch, prefix exact.
    other = _string_table(["p", "q"])
    other.extend([(2, "r"), (3, 17)], validate=False)
    assert list(other.column("name")) == ["p", "q", "r", 17]


@needs_numpy
def test_dict_vector_views_and_concurrent_appends(dict_backend):
    from repro.exec.vector import DictVector

    table = _string_table(["u", "v", "u", "w"])
    view = table.vector("name")
    assert isinstance(view, DictVector)
    assert view.tolist() == ["u", "v", "u", "w"]
    assert view[2] == "u" and list(view[1:3]) == ["v", "u"]
    assert table.vector("name") is view  # cached until the next append
    # Appending — including new dictionary entries — never locks the codes
    # buffer and leaves already-served code views unaffected.
    table.append((4, "z"))
    table.append((5, "u"))
    assert view.tolist() == ["u", "v", "u", "w"]
    fresh = table.vector("name")
    assert fresh is not view
    assert fresh.tolist() == ["u", "v", "u", "w", "z", "u"]
    # The dictionary object is shared (append-only): codes stay stable.
    assert fresh.values is table.column("name").values


@needs_numpy
def test_dict_filter_miss_literals(dict_backend):
    from repro.exec import execute_plan
    from repro.relational.expr import IsNull, col, eq, lit, ne
    from repro.relational.physical import FilterOp, SeqScan

    table = _string_table(["a", "b", "a", "c"])
    runs = [
        (eq(col("s.name"), lit("nope")), []),
        (ne(col("s.name"), lit("nope")), [(0, "a"), (1, "b"), (2, "a"), (3, "c")]),
        (eq(col("s.name"), lit("b")), [(1, "b")]),
        (IsNull(col("s.name")), []),
        (IsNull(col("s.name"), negated=True), [(0, "a"), (1, "b"), (2, "a"), (3, "c")]),
    ]
    for predicate, expected in runs:
        result = execute_plan(FilterOp(SeqScan(table, "s"), predicate))
        assert result.sorted_rows() == expected


def test_dict_join_remaps_between_distinct_dictionaries(dict_backend):
    # The two sides intern the same values in different orders (different
    # codes for the same string), and the probe side's dictionary holds
    # build-side misses: matching must go by value, never by code.
    from repro.exec import execute_plan
    from repro.relational.physical import HashJoin, SeqScan

    left = _string_table(["a", "b", "c", "a"])
    right = _string_table(["c", "x", "a", "c"])
    plan = HashJoin(SeqScan(left, "l"), SeqScan(right, "r"), ["l.name"], ["r.name"])
    rows = execute_plan(plan).sorted_rows()
    assert rows == [
        (0, "a", 2, "a"),
        (2, "c", 0, "c"),
        (2, "c", 3, "c"),
        (3, "a", 2, "a"),
    ]
    # A dict build side probed by a plain-list side (and vice versa) agrees.
    set_storage_backend("list")
    try:
        plain = _string_table(["c", "x", "a", "c"])
    finally:
        set_storage_backend("dict")
    mixed = HashJoin(SeqScan(left, "l"), SeqScan(plain, "r"), ["l.name"], ["r.name"])
    assert execute_plan(mixed).sorted_rows() == rows
    flipped = HashJoin(SeqScan(plain, "r"), SeqScan(left, "l"), ["r.name"], ["l.name"])
    assert len(execute_plan(flipped).rows) == len(rows)


def test_dict_memory_accounting_charges_codes_plus_dictionary(dict_backend):
    import sys

    names = ["alpha", "beta", "gamma"] * 100
    table = _string_table(names)
    bytes_by_column = table.memory_bytes()
    expected = 8 * len(names) + sum(
        sys.getsizeof(v) for v in ("alpha", "beta", "gamma")
    )
    assert bytes_by_column["name"] == expected
    # The same column as a plain list charges a pointer slot plus the
    # object per row — strictly more on repetitive data.
    set_storage_backend("list")
    try:
        plain = _string_table(names)
    finally:
        set_storage_backend("dict")
    assert plain.memory_bytes()["name"] > bytes_by_column["name"]
    # Typed INT storage charges exactly its C buffer.
    assert bytes_by_column["id"] == 8 * len(names)
