"""Morsel-driven parallel execution: parity, OOM, and thread-safety.

Three concerns:

* **Parity** — every plan executed at ``parallelism=4`` must produce the
  same ``QueryResult`` as serial execution: identical canonical rows and
  ``rows_produced`` everywhere (the exchange is transport, not an
  operator), and identical row *order* wherever the engine guarantees one
  (ORDER BY / TopK / Limit / streaming chains; unordered aggregation
  output may legally interleave differently, exactly as it already does
  across batch sizes).
* **Budget semantics** — the memory-budget OOMs trip at the same charges
  (the hash-join build folds into one shared buffer; partial states are
  subsets of the serial state), and LIMIT early-exit scopes stay serial so
  parallel run-ahead never wastes bounded-work guarantees.
* **Thread-safety of shared caches** — concurrent queries race the lazily
  built ``Table.vector()`` ndarray views and the CSR ``vectors()`` /
  ``endpoint_vector()`` views (including deliberate cache invalidation
  between rounds) without corrupting results; a writer appending rows
  concurrently with readers never crashes the readers.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import OutOfMemoryError
from repro.exec import (
    ExchangeOp,
    ExecutionContext,
    execute_plan,
    morsel_ranges,
    parallelize_plan,
)
from repro.exec.grouping import NAN, GroupedAggregation
from repro.exec.vector import numpy_available
from repro.graph.index import build_graph_index
from repro.relational.expr import col, gt, lit
from repro.relational.logical import AggregateSpec
from repro.relational.physical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    HashJoin,
    LimitOp,
    SeqScan,
    TopKOp,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.systems import make_system
from repro.workloads.ldbc import LdbcParams, generate_ldbc
from repro.workloads.ldbc.queries import ic_queries, qc_queries, qr_queries

PARALLELISM = 4


def make_table(n: int = 20_000, name: str = "t") -> Table:
    schema = TableSchema(
        name,
        [
            Column("id", DataType.INT),
            Column("v", DataType.INT),
            Column("f", DataType.FLOAT),
        ],
        primary_key="id",
    )
    table = Table(schema)
    table.extend_columns(
        [
            list(range(n)),
            [(i * 7) % 97 for i in range(n)],
            [NAN if i % 11 == 0 else float(i % 13) for i in range(n)],
        ],
        validate=False,
    )
    return table


@pytest.fixture(scope="module")
def table():
    return make_table()


@pytest.fixture(scope="module")
def ldbc():
    catalog, mapping = generate_ldbc(LdbcParams.scaled(0.25, seed=11))
    catalog.register_graph_index(build_graph_index(mapping))
    return catalog


# --------------------------------------------------------------------- #
# scheduler units
# --------------------------------------------------------------------- #


def test_morsel_ranges_cover_and_align():
    ranges = morsel_ranges(10_000, 4, 1024)
    assert ranges[0][0] == 0 and ranges[-1][1] == 10_000
    for (_, stop), (start, _) in zip(ranges, ranges[1:]):
        assert stop == start  # contiguous, no overlap
    assert all(start % 1024 == 0 for start, _ in ranges)  # batch-grid aligned
    # Tiny inputs and serial contexts never split.
    assert morsel_ranges(100, 4, 1024) == [(0, 100)]
    assert morsel_ranges(10_000, 1, 1024) == [(0, 10_000)]


def test_parallelize_preserves_original_plan(table):
    plan = AggregateOp(
        FilterOp(SeqScan(table, "t"), gt(col("t.v"), lit(3))),
        [(col("t.v"), "v")],
        [AggregateSpec("COUNT", None, "c")],
    )
    trace = plan.explain()
    assert parallelize_plan(plan, 1, 1024) is plan
    rewritten = parallelize_plan(plan, PARALLELISM, 1024)
    assert rewritten is not plan
    assert "EXCHANGE" in rewritten.explain()
    # The optimizer's tree (and its trace) is untouched by the rewrite.
    assert plan.explain() == trace
    assert "EXCHANGE" not in trace


def test_limit_scope_stays_serial(table):
    # A LIMIT's streaming scope must not parallelize (run-ahead would waste
    # the early exit), but a full-drain boundary below it resets the scope.
    limited = LimitOp(FilterOp(SeqScan(table, "t"), gt(col("t.v"), lit(3))), 7)
    assert parallelize_plan(limited, PARALLELISM, 1024) is limited
    over_agg = LimitOp(
        AggregateOp(
            SeqScan(table, "t"), [(col("t.v"), "v")], [AggregateSpec("COUNT", None, "c")]
        ),
        3,
    )
    rewritten = parallelize_plan(over_agg, PARALLELISM, 1024)
    assert "EXCHANGE" in rewritten.explain()
    result = execute_plan(over_agg, parallelism=PARALLELISM)
    assert len(result) == 3


def test_limit_early_exit_bounded_under_parallelism(table):
    plan = LimitOp(SeqScan(table, "t"), 10)
    result = execute_plan(plan, parallelism=PARALLELISM)
    assert len(result) == 10
    assert result.rows_produced < 5_000  # the early-exit scope stayed serial


def test_exchange_closes_cleanly_mid_stream(table):
    # Close the merged stream after one batch: workers must unblock and the
    # same plan must stay executable afterwards.
    rewritten = parallelize_plan(SeqScan(table, "t"), PARALLELISM, 1024)
    assert isinstance(rewritten, ExchangeOp)
    ctx = ExecutionContext(parallelism=PARALLELISM)
    stream = rewritten.columnar_batches(ctx)
    first = next(stream)
    assert len(first)
    stream.close()
    again = execute_plan(rewritten, parallelism=PARALLELISM)
    assert len(again) == table.num_rows


# --------------------------------------------------------------------- #
# parity: hand-built plans (breaker folds) and full workloads
# --------------------------------------------------------------------- #


def _nan_safe(rows: list) -> list:
    # NaN != NaN would fail exact comparisons on byte-identical rows.
    return [tuple("NaN" if v != v else v for v in row) for row in rows]


def _assert_matches_serial(plan, order_sensitive: bool = False) -> None:
    serial = execute_plan(plan, parallelism=1)
    for columnar in (True, False):
        parallel = execute_plan(plan, columnar=columnar, parallelism=PARALLELISM)
        assert parallel.columns == serial.columns
        if order_sensitive:
            assert _nan_safe(parallel.rows) == _nan_safe(serial.rows)
        assert _nan_safe(parallel.sorted_rows()) == _nan_safe(serial.sorted_rows())
        assert parallel.rows_produced == serial.rows_produced


def test_parallel_scan_chain_order_exact(table):
    # Streaming chains preserve row order through the ordered exchange.
    _assert_matches_serial(
        FilterOp(SeqScan(table, "t"), gt(col("t.id"), lit(100))),
        order_sensitive=True,
    )


def test_parallel_aggregate_fold(table):
    _assert_matches_serial(
        AggregateOp(
            SeqScan(table, "t"),
            [(col("t.v"), "v"), (col("t.f"), "f")],
            [
                AggregateSpec("COUNT", None, "c"),
                AggregateSpec("SUM", col("t.id"), "s"),
                AggregateSpec("MIN", col("t.f"), "lo"),
                AggregateSpec("MAX", col("t.f"), "hi"),
                AggregateSpec("AVG", col("t.id"), "a"),
            ],
        )
    )


def test_parallel_highcard_aggregate_fold(table):
    # High-cardinality single key: the typed array state promotes inside
    # workers and demotes during the merge.
    _assert_matches_serial(
        AggregateOp(
            SeqScan(table, "t"),
            [(col("t.id"), "id")],
            [AggregateSpec("COUNT", None, "c"), AggregateSpec("SUM", col("t.v"), "s")],
        )
    )


def test_parallel_distinct_fold_order_exact(table):
    # DISTINCT survivors are first occurrences in global row order — exact
    # order must survive the per-worker fold (NaN keys dedup canonically).
    _assert_matches_serial(
        DistinctOp(SeqScan(table, "t", projected=["v", "f"])), order_sensitive=True
    )


def test_parallel_topk_fold_order_exact(table):
    _assert_matches_serial(
        TopKOp(SeqScan(table, "t"), [(col("t.v"), True), (col("t.id"), False)], 23),
        order_sensitive=True,
    )
    # Ties resolved by arrival order: every id shares v for a fixed bucket.
    _assert_matches_serial(
        TopKOp(SeqScan(table, "t"), [(col("t.v"), False)], 50), order_sensitive=True
    )


def test_parallel_hash_join_build_fold(table):
    right = make_table(5_000, "r")
    _assert_matches_serial(
        HashJoin(SeqScan(table, "l"), SeqScan(right, "r"), ["l.v"], ["r.v"])
    )


LDBC_PARITY_QUERIES = ["IC1-2", "IC2", "IC4", "IC5-2", "IC12", "QR2", "QR4", "QC1", "QC2"]


@pytest.mark.parametrize(
    "system_name", ["relgo", "relgo_noei", "relgo_hash", "duckdb", "graindb", "kuzu"]
)
def test_ldbc_workload_parallel_parity(ldbc, system_name):
    system = make_system(system_name, ldbc, "snb")
    queries = {**ic_queries(), **qr_queries(), **qc_queries()}
    for name in LDBC_PARITY_QUERIES:
        optimized = system.optimize(queries[name])
        serial = execute_plan(optimized.physical, parallelism=1)
        parallel = execute_plan(optimized.physical, parallelism=PARALLELISM)
        assert parallel.sorted_rows() == serial.sorted_rows(), (system_name, name)
        assert parallel.rows_produced == serial.rows_produced, (system_name, name)


def test_orderby_limit_exact_rows_parallel(ldbc):
    # ORDER BY ... LIMIT guarantees row order: exact equality, not just
    # canonical equality, and across both protocols.
    system = make_system("relgo", ldbc, "snb")
    optimized = system.optimize(ic_queries()["IC2"])
    serial = execute_plan(optimized.physical, parallelism=1)
    for columnar in (True, False):
        parallel = execute_plan(
            optimized.physical, columnar=columnar, parallelism=PARALLELISM
        )
        assert parallel.rows == serial.rows


# --------------------------------------------------------------------- #
# budget semantics
# --------------------------------------------------------------------- #


def test_oom_on_hash_build_parallel(table):
    small = make_table(10, "l")
    join = HashJoin(SeqScan(small, "l"), SeqScan(table, "r"), ["l.v"], ["r.v"])
    with pytest.raises(OutOfMemoryError):
        execute_plan(join, memory_budget_rows=10_000, parallelism=PARALLELISM, spill=False)


def test_oom_on_result_buffer_parallel(table):
    with pytest.raises(OutOfMemoryError):
        execute_plan(SeqScan(table, "t"), memory_budget_rows=10_000, parallelism=PARALLELISM, spill=False)


def test_streaming_pipeline_does_not_false_trip_budget_parallel(table):
    plan = FilterOp(SeqScan(table, "t"), gt(col("t.v"), lit(90)))
    result = execute_plan(plan, memory_budget_rows=5_000, parallelism=PARALLELISM)
    assert _nan_safe(result.sorted_rows()) == _nan_safe(
        execute_plan(plan, parallelism=1).sorted_rows()
    )
    # Aggregation partials are untracked: the tracked peak is the merged
    # state plus the result buffer, just like serial execution.
    agg = AggregateOp(
        SeqScan(table, "t"), [(col("t.v"), "v")], [AggregateSpec("COUNT", None, "c")]
    )
    serial = execute_plan(agg, parallelism=1)
    parallel = execute_plan(agg, parallelism=PARALLELISM)
    assert parallel.peak_buffered_rows == serial.peak_buffered_rows


# --------------------------------------------------------------------- #
# GroupedAggregation.merge_from unit
# --------------------------------------------------------------------- #


def _engine_result(engine: GroupedAggregation) -> dict:
    columns = engine.result_columns()
    keys = list(zip(*columns[: engine.num_keys])) or [()] * engine.num_groups
    return {
        tuple("NaN" if v != v else v for v in key): tuple(
            "NaN" if column[g] != column[g] else column[g]
            for column in columns[engine.num_keys :]
        )
        for g, key in enumerate(keys)
    }


def test_grouped_aggregation_merge_from_matches_serial():
    funcs = ["COUNT", "SUM", "MIN", "MAX", "AVG"]
    values = [NAN if i % 9 == 0 else float(i % 23) for i in range(4_000)]
    keys = [(i * 3) % 41 for i in range(4_000)]
    serial = GroupedAggregation(1, funcs)
    arg = lambda chunk: [chunk] * len(funcs)  # noqa: E731
    serial.consume([keys], arg(values), len(keys))
    merged = GroupedAggregation(1, funcs)
    for start in range(0, 4_000, 1_000):
        part = GroupedAggregation(1, funcs)
        part.consume(
            [keys[start : start + 1_000]],
            arg(values[start : start + 1_000]),
            1_000,
        )
        merged.merge_from(part)
    assert _engine_result(merged) == _engine_result(serial)


@pytest.mark.skipif(not numpy_available(), reason="typed state needs numpy")
def test_merge_from_demotes_promoted_partials():
    import numpy as np

    funcs = ["COUNT", "SUM"]
    keys = np.arange(10_000) % 4_096  # high cardinality: promotes
    vals = np.arange(10_000, dtype=np.int64)
    serial = GroupedAggregation(1, funcs)
    serial.consume([keys], [None, vals], len(keys))
    assert serial._array is not None  # really exercised the typed state
    merged = GroupedAggregation(1, funcs)
    for start in range(0, 10_000, 2_500):
        part = GroupedAggregation(1, funcs)
        chunk = slice(start, start + 2_500)
        part.consume([keys[chunk]], [None, vals[chunk]], 2_500)
        merged.merge_from(part)
    assert _engine_result(merged) == _engine_result(serial)


# --------------------------------------------------------------------- #
# shared-cache thread-safety (Table.vector / CSR vectors views)
# --------------------------------------------------------------------- #


def test_concurrent_queries_race_shared_caches(ldbc):
    system = make_system("relgo", ldbc, "snb")
    queries = {**ic_queries(), **qc_queries()}
    plans = [
        system.optimize(queries[name]).physical
        for name in ("IC1-2", "IC2", "QC1")
    ]
    references = [execute_plan(p, parallelism=1).sorted_rows() for p in plans]

    def clear_caches() -> None:
        # Drop every lazily built ndarray view so the racing queries must
        # rebuild them concurrently (the races the views must survive).
        for name in ldbc.table_names():
            ldbc.table(name)._vectors.clear()
        index = ldbc.graph_index("snb")
        for adjacency in index.ve.values():
            adjacency._vectors.clear()
        for edge_index in index.ev.values():
            edge_index._vectors.clear()

    failures: list = []

    def reader(worker: int) -> None:
        try:
            for round_no in range(3):
                for plan, expected in zip(plans, references):
                    result = execute_plan(plan, parallelism=2)
                    if result.sorted_rows() != expected:
                        failures.append((worker, round_no, "mismatch"))
        except Exception as exc:  # noqa: BLE001 — surfaced via failures
            failures.append((worker, repr(exc)))

    clear_caches()
    threads = [threading.Thread(target=reader, args=(i,)) for i in range(6)]
    for t in threads:
        t.start()
    clear_caches()  # invalidate mid-flight: rebuilds must stay consistent
    for t in threads:
        t.join()
    assert not failures, failures[:3]


def test_append_racing_readers_never_corrupts(table):
    # A writer appends to its own table while readers execute parallel
    # scans against it: scans snapshot num_rows at start, so every result
    # is a consistent prefix and nothing crashes.
    target = make_table(4_000, "w")
    n0 = target.num_rows
    appended = 500
    plan = FilterOp(SeqScan(target, "w"), gt(col("w.id"), lit(-1)))
    failures: list = []
    done = threading.Event()

    def writer() -> None:
        try:
            for i in range(appended):
                target.append((n0 + i, (i * 7) % 97, float(i % 13)), validate=False)
        except Exception as exc:  # noqa: BLE001
            failures.append(repr(exc))
        finally:
            done.set()

    def reader() -> None:
        try:
            while not done.is_set():
                result = execute_plan(plan, parallelism=2)
                if not (n0 <= len(result) <= n0 + appended):
                    failures.append(("rows", len(result)))
        except Exception as exc:  # noqa: BLE001
            failures.append(repr(exc))

    threads = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread = threading.Thread(target=writer)
    for t in threads:
        t.start()
    writer_thread.start()
    writer_thread.join()
    for t in threads:
        t.join()
    assert not failures, failures[:3]
    final = execute_plan(plan, parallelism=PARALLELISM)
    assert len(final) == n0 + appended


def test_same_plan_concurrent_parallel_executions(table):
    # One optimized plan object executed concurrently from several threads,
    # each with parallelism>1: operator instances hold no per-execution
    # state, so all executions must agree.
    plan = AggregateOp(
        FilterOp(SeqScan(table, "t"), gt(col("t.id"), lit(50))),
        [(col("t.v"), "v")],
        [AggregateSpec("COUNT", None, "c"), AggregateSpec("SUM", col("t.id"), "s")],
    )
    expected = execute_plan(plan, parallelism=1).sorted_rows()
    failures: list = []

    def run() -> None:
        try:
            for _ in range(3):
                if execute_plan(plan, parallelism=2).sorted_rows() != expected:
                    failures.append("mismatch")
        except Exception as exc:  # noqa: BLE001
            failures.append(repr(exc))

    threads = [threading.Thread(target=run) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures[:3]
