"""The graph-aware optimizer: search, lowering, and agreement with the
reference matcher under every lowering mode."""

from __future__ import annotations

import pytest

from repro.graph.cost import CardinalityEstimator
from repro.graph.glogue import GLogue
from repro.graph.matching import match_pattern
from repro.graph.optimizer import (
    GraphOptimizer,
    GraphOptimizerConfig,
    LoweringConfig,
    connected_proper_subsets,
    lower_plan,
)
from repro.graph.pattern import PatternGraph
from repro.relational.executor import ExecutionContext
from repro.relational.expr import col, eq, lit


def build_optimizer(catalog, mapping, index, **config_kwargs):
    glogue = GLogue(mapping, index, sample_ratio=1.0)
    estimator = CardinalityEstimator(glogue, catalog)
    return GraphOptimizer(mapping, estimator, GraphOptimizerConfig(**config_kwargs))


def triangle():
    return (
        PatternGraph.builder()
        .vertex("p1", "Person")
        .vertex("p2", "Person")
        .vertex("m", "Message")
        .edge("p1", "p2", "Knows", name="k")
        .edge("p1", "m", "Likes", name="l1")
        .edge("p2", "m", "Likes", name="l2")
        .build()
    )


def rows_as_bindings(op, ctx=None):
    ctx = ctx or ExecutionContext()
    rows = op.execute(ctx)
    names = [v.name for v in op.output_vars]
    return sorted(tuple(sorted(zip(names, row))) for row in rows)


def reference_bindings(mapping, index, pattern, keep=None):
    matches = match_pattern(mapping, index, pattern)
    out = []
    for b in matches:
        items = [(k, v) for k, v in b.items() if keep is None or k in keep]
        out.append(tuple(sorted(items)))
    return sorted(out)


@pytest.mark.parametrize(
    "mode",
    ["indexed", "no_index", "no_ei", "unfused"],
)
def test_triangle_plan_matches_reference(fig2, mode):
    catalog, mapping, index = fig2
    pattern = triangle()
    optimizer = build_optimizer(
        catalog, mapping, index, use_graph_index=(mode != "no_index")
    )
    plan = optimizer.optimize(pattern)
    lowering = LoweringConfig(
        use_graph_index=(mode != "no_index"),
        enable_expand_intersect=(mode != "no_ei"),
        needed_edge_vars=frozenset({"k", "l1", "l2"}),
        fuse=(mode != "unfused"),
    )
    op = lower_plan(plan, mapping, index if mode != "no_index" else None, lowering)
    assert rows_as_bindings(op) == reference_bindings(mapping, index, pattern)


def test_triangle_trimmed_edges_keep_multiplicity(fig2):
    catalog, mapping, index = fig2
    pattern = triangle()
    optimizer = build_optimizer(catalog, mapping, index)
    plan = optimizer.optimize(pattern)
    op = lower_plan(
        plan, mapping, index, LoweringConfig(needed_edge_vars=frozenset())
    )
    got = rows_as_bindings(op)
    expected = reference_bindings(mapping, index, pattern, keep={"p1", "p2", "m"})
    assert got == expected


def test_predicate_pushed_into_scan(fig2):
    catalog, mapping, index = fig2
    pattern = triangle().with_vertex_constraint("p1", eq(col("name"), lit("Tom")))
    optimizer = build_optimizer(catalog, mapping, index)
    plan = optimizer.optimize(pattern)
    op = lower_plan(plan, mapping, index, LoweringConfig())
    got = rows_as_bindings(op)
    expected = reference_bindings(mapping, index, pattern, keep={"p1", "p2", "m"})
    assert got == expected
    assert len(got) == 1


def test_path_pattern_all_modes_agree(fig2):
    catalog, mapping, index = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .vertex("c", "Person")
        .edge("a", "b", "Knows", name="k1")
        .edge("b", "c", "Knows", name="k2")
        .build()
    )
    expected = reference_bindings(mapping, index, pattern)
    for use_index in (True, False):
        optimizer = build_optimizer(catalog, mapping, index, use_graph_index=use_index)
        plan = optimizer.optimize(pattern)
        op = lower_plan(
            plan,
            mapping,
            index if use_index else None,
            LoweringConfig(
                use_graph_index=use_index,
                needed_edge_vars=frozenset({"k1", "k2"}),
            ),
        )
        assert rows_as_bindings(op) == expected


def test_isomorphism_lowering(fig2):
    catalog, mapping, index = fig2
    pattern = (
        PatternGraph.builder()
        .vertex("a", "Person")
        .vertex("b", "Person")
        .vertex("c", "Person")
        .edge("a", "b", "Knows")
        .edge("b", "c", "Knows")
        .build()
    )
    optimizer = build_optimizer(catalog, mapping, index)
    plan = optimizer.optimize(pattern)
    op = lower_plan(
        plan, mapping, index, LoweringConfig(semantics="isomorphism")
    )
    rows = op.execute(ExecutionContext())
    names = [v.name for v in op.output_vars]
    a, b, c = names.index("a"), names.index("b"), names.index("c")
    assert len(rows) == 2
    assert all(row[a] != row[c] for row in rows)


def test_plan_cost_and_cardinality_positive(fig2):
    catalog, mapping, index = fig2
    optimizer = build_optimizer(catalog, mapping, index)
    plan = optimizer.optimize(triangle())
    assert plan.cost > 0
    assert plan.cardinality > 0
    # With full sampling, the estimate of the triangle should be exact.
    assert plan.cardinality == pytest.approx(4.0, rel=0.5)


def test_triangle_uses_intersect(fig2):
    """A cost-based plan for a cyclic pattern should close the cycle with
    EXPAND_INTERSECT rather than a hash join (wco plan, Sec 3.2.2)."""
    catalog, mapping, index = fig2
    optimizer = build_optimizer(catalog, mapping, index)
    plan = optimizer.optimize(triangle())
    assert "intersect" in plan.operators()


def test_connected_proper_subsets_of_triangle(fig2):
    pattern = triangle()
    subsets = connected_proper_subsets(pattern, frozenset(pattern.vertices))
    # All 2-subsets of a triangle are connected: {p1,p2}, {p1,m}, {p2,m}.
    assert sorted(tuple(sorted(s)) for s in subsets) == [
        ("m", "p1"),
        ("m", "p2"),
        ("p1", "p2"),
    ]


def test_no_ei_star_is_multiple_join(fig2):
    """With EI disabled the star lowers to PATTERN_HASH_JOIN operators."""
    catalog, mapping, index = fig2
    optimizer = build_optimizer(catalog, mapping, index)
    plan = optimizer.optimize(triangle())
    op = lower_plan(
        plan,
        mapping,
        index,
        LoweringConfig(enable_expand_intersect=False),
    )
    assert "PATTERN_HASH_JOIN" in op.explain()
