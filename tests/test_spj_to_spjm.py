"""The SPJ -> SPJM converter (the paper's Sec 7 future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.spj_to_spjm import convert_spj_to_spjm
from repro.core.spjm import SPJMQuery
from repro.relational.expr import col, eq, lit


def spj_friends_query() -> SPJMQuery:
    """Example 1 hand-written as plain SPJ (no GRAPH_TABLE)."""
    return SPJMQuery(
        graph_table=None,
        relations=[
            ("Person", "p1"),
            ("Person", "p2"),
            ("Message", "m"),
            ("Knows", "k"),
            ("Likes", "l1"),
            ("Likes", "l2"),
            ("Place", "pl"),
        ],
        predicates=[
            eq(col("k.pid1"), col("p1.person_id")),
            eq(col("k.pid2"), col("p2.person_id")),
            eq(col("l1.pid"), col("p1.person_id")),
            eq(col("l1.mid"), col("m.message_id")),
            eq(col("l2.pid"), col("p2.person_id")),
            eq(col("l2.mid"), col("m.message_id")),
            eq(col("p1.place_id"), col("pl.id")),
            eq(col("p1.name"), lit("Tom")),
        ],
        projections=[(col("p2.name"), "friend"), (col("pl.name"), "place")],
    )


def test_conversion_folds_the_pattern(fig2):
    _, mapping, _ = fig2
    converted, report = convert_spj_to_spjm(spj_friends_query(), mapping)
    assert report.converted
    assert report.folded_edge_aliases == ["k", "l1", "l2"]
    assert report.folded_vertex_aliases == ["m", "p1", "p2"]
    assert report.folded_conjuncts == 6
    clause = converted.graph_table
    assert clause is not None
    assert clause.pattern.num_vertices == 3
    assert clause.pattern.num_edges == 3
    # Place stays relational.
    assert converted.relations == [("Place", "pl")]


def test_converted_query_runs_and_matches_spj(fig2):
    catalog, mapping, _ = fig2
    spj = spj_friends_query()
    baseline = RelGoFramework(
        catalog, "G", RelGoConfig(graph_aware=False, use_graph_index=False)
    )
    expected, _ = baseline.run(spj)

    converted, report = convert_spj_to_spjm(spj, mapping)
    assert report.converted
    relgo = RelGoFramework(catalog, "G", RelGoConfig())
    relgo.prepare()
    result, optimized = relgo.run(converted)
    assert result.sorted_rows() == expected.sorted_rows() == [("Bob", "Germany")]
    # The converted query goes through the graph optimizer.
    assert "SCAN_GRAPH_TABLE" in optimized.explain()
    # FilterIntoMatchRule picked up the Tom filter through the rewrite.
    assert optimized.rule_report is not None
    assert optimized.rule_report.pushed_constraints == 1


def test_conversion_noop_without_edge_joins(fig2):
    _, mapping, _ = fig2
    query = SPJMQuery(
        graph_table=None,
        relations=[("Person", "p"), ("Place", "pl")],
        predicates=[eq(col("p.place_id"), col("pl.id"))],
        projections=[(col("p.name"), "n")],
    )
    converted, report = convert_spj_to_spjm(query, mapping)
    assert not report.converted
    assert converted is query


def test_conversion_requires_both_fk_halves(fig2):
    """Joining an edge table on only one endpoint must not fold."""
    _, mapping, _ = fig2
    query = SPJMQuery(
        graph_table=None,
        relations=[("Person", "p1"), ("Knows", "k")],
        predicates=[eq(col("k.pid1"), col("p1.person_id"))],
        projections=[(col("p1.name"), "n")],
    )
    converted, report = convert_spj_to_spjm(query, mapping)
    assert not report.converted


def test_conversion_folds_largest_component_only(fig2):
    """Two disconnected matchable regions: only the larger one folds."""
    _, mapping, _ = fig2
    query = SPJMQuery(
        graph_table=None,
        relations=[
            ("Person", "a"),
            ("Person", "b"),
            ("Person", "c"),
            ("Knows", "k1"),
            ("Knows", "k2"),
            ("Person", "x"),
            ("Message", "y"),
            ("Likes", "lk"),
        ],
        predicates=[
            eq(col("k1.pid1"), col("a.person_id")),
            eq(col("k1.pid2"), col("b.person_id")),
            eq(col("k2.pid1"), col("b.person_id")),
            eq(col("k2.pid2"), col("c.person_id")),
            eq(col("lk.pid"), col("x.person_id")),
            eq(col("lk.mid"), col("y.message_id")),
        ],
        projections=[(col("a.name"), "n"), (col("x.name"), "xn")],
    )
    converted, report = convert_spj_to_spjm(query, mapping)
    assert report.folded_edge_aliases == ["k1", "k2"]
    # The likes region stays relational.
    aliases = {a for _, a in converted.relations}
    assert {"x", "y", "lk"} <= aliases


def test_converted_aggregate_query(fig2):
    from repro.relational.logical import AggregateSpec

    catalog, mapping, _ = fig2
    query = SPJMQuery(
        graph_table=None,
        relations=[("Person", "p"), ("Message", "m"), ("Likes", "l")],
        predicates=[
            eq(col("l.pid"), col("p.person_id")),
            eq(col("l.mid"), col("m.message_id")),
        ],
        aggregates=[AggregateSpec("COUNT", None, "n")],
    )
    converted, report = convert_spj_to_spjm(query, mapping)
    assert report.converted
    relgo = RelGoFramework(catalog, "G", RelGoConfig())
    relgo.prepare()
    result, _ = relgo.run(converted)
    assert result.rows == [(4,)]
