"""Serving layer: plan cache, sessions, and concurrency under live writers.

Three layers of guarantees are pinned here:

1. **Plan cache correctness** — fingerprints, rebinding (including the
   ``x = 5 AND x = 5`` dedup trap), baked-slot variants (LIMIT / LIKE /
   IN / implicit aliases), catalog-version invalidation, LRU bounds.
2. **Session lifecycle** — execute/submit/cancel/close; a closed session
   leaks nothing: no threads, no governor leases, no spill files.
3. **Snapshot consistency under concurrency** — N sessions × M queries
   against tables a writer thread is appending to: every result reflects
   one published epoch (chunk-aligned counts, monotonic per session), and
   graph queries over a pinned CSR index are bit-stable.
"""

from __future__ import annotations

import threading

import pytest

from conftest import build_fig2_catalog
from repro.errors import (
    AdmissionError,
    ParameterError,
    ParseError,
    QueryCancelled,
    SessionClosed,
)
from repro.exec.governor import MemoryGovernor
from repro.relational.catalog import Catalog
from repro.relational.column import (
    DictColumn,
    DictDemotion,
    is_dict,
    set_storage_backend,
)
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.serving import Database, fingerprint
from repro.serving.plan_cache import PlanCache
from repro.systems.base import make_system


# Databases opened by the helpers below; an autouse fixture closes them
# after each test so shared-pool worker threads (repro-pool-*) and wire
# threads never leak into other suites' thread-leak assertions.
_OPEN_DBS: list[Database] = []


def _track(db: Database) -> Database:
    _OPEN_DBS.append(db)
    return db


@pytest.fixture(autouse=True)
def _close_tracked_dbs():
    yield
    while _OPEN_DBS:
        _OPEN_DBS.pop().close()


def _people_db(rows=None, **kwargs) -> Database:
    catalog = Catalog()
    catalog.create_table(
        TableSchema(
            "People",
            [
                Column("id", DataType.INT),
                Column("name", DataType.STRING),
                Column("age", DataType.INT),
            ],
            primary_key="id",
        ),
        rows=rows
        if rows is not None
        else [
            (1, "Ann", 34),
            (2, "Bob", 28),
            (3, "Cid", 41),
            (4, "Dee", 28),
        ],
    )
    return _track(Database(catalog=catalog, **kwargs))


def _fig2_db():
    catalog, mapping = build_fig2_catalog()
    db = _track(Database(catalog=catalog))
    db.warmup()
    return db


# ---------------------------------------------------------------------- #
# fingerprinting
# ---------------------------------------------------------------------- #


class TestFingerprint:
    def test_literals_become_slots_in_text_order(self):
        fp = fingerprint("SELECT a FROM t WHERE x = 5 AND y = 'it''s' AND z = 1.5")
        assert fp.normalized.count("?") == 3
        assert fp.values == (5, "it's", 1.5)
        assert fp.type_names == ("int", "str", "float")

    def test_whitespace_and_comments_do_not_split_shapes(self):
        a = fingerprint("SELECT a FROM t WHERE x = 5")
        b = fingerprint("SELECT  a\n FROM t -- a comment\n WHERE x = 7")
        assert a.normalized == b.normalized
        assert a.key == b.key

    def test_literal_types_split_shapes(self):
        a = fingerprint("SELECT a FROM t WHERE x = 5")
        b = fingerprint("SELECT a FROM t WHERE x = 5.0")
        assert a.normalized == b.normalized
        assert a.key != b.key

    def test_keywords_and_identifiers_are_not_slots(self):
        fp = fingerprint("SELECT a FROM t WHERE flag = TRUE AND b IS NOT NULL")
        assert fp.values == ()

    def test_string_contents_never_tokenize(self):
        fp = fingerprint("SELECT a FROM t WHERE name = '5 -- SELECT 9'")
        assert fp.values == ("5 -- SELECT 9",)
        assert fp.normalized.count("?") == 1


# ---------------------------------------------------------------------- #
# plan cache: hits, rebinding, variants, invalidation
# ---------------------------------------------------------------------- #


class TestPlanCache:
    def test_hit_rebinds_literals(self):
        db = _people_db()
        with db.connect() as ses:
            r1 = ses.execute("SELECT name FROM People WHERE age = 28 ORDER BY name")
            r2 = ses.execute("SELECT name FROM People WHERE age = 41 ORDER BY name")
        assert r1.rows == [("Bob",), ("Dee",)]
        assert r2.rows == [("Cid",)]
        assert db.plan_cache.stats.hits == 1
        assert db.plan_cache.stats.misses == 1

    def test_hot_path_skips_the_frontend(self, monkeypatch):
        db = _people_db()
        ses = db.connect()
        ses.execute("SELECT name FROM People WHERE age = 28")
        import repro.core.sqlpgq.binder as binder_mod
        import repro.core.sqlpgq.parser as parser_mod

        def boom(*a, **k):  # pragma: no cover - would mean a cache miss
            raise AssertionError("frontend invoked on a cache hit")

        # Patch at the source modules: cached_optimize imports these at
        # call time, so a hit must never touch either.
        monkeypatch.setattr(parser_mod, "Parser", boom)
        monkeypatch.setattr(binder_mod, "bind_query", boom)
        r = ses.execute("SELECT name FROM People WHERE age = 34")
        assert r.rows == [("Ann",)]
        ses.close()

    def test_duplicate_conjunct_dedup_is_uncacheable_not_wrong(self):
        # and_() dedups conjuncts by string: `age = 28 AND age = 28`
        # collapses to one conjunct, losing a parameter slot.  The safety
        # valve must refuse to cache that plan; a later query with two
        # DIFFERENT values must not be answered from it.
        db = _people_db()
        with db.connect() as ses:
            r1 = ses.execute("SELECT name FROM People WHERE age = 28 AND age = 28")
            assert sorted(r1.rows) == [("Bob",), ("Dee",)]
            assert db.plan_cache.stats.uncacheable == 1
            assert len(db.plan_cache) == 0
            r2 = ses.execute("SELECT name FROM People WHERE age = 28 AND age = 41")
            assert r2.rows == []

    def test_baked_limit_gets_its_own_variant(self):
        db = _people_db()
        with db.connect() as ses:
            r2 = ses.execute("SELECT name FROM People ORDER BY name LIMIT 2")
            r3 = ses.execute("SELECT name FROM People ORDER BY name LIMIT 3")
            assert len(r2.rows) == 2 and len(r3.rows) == 3
            assert db.plan_cache.stats.misses == 2  # distinct variants
            again = ses.execute("SELECT name FROM People ORDER BY name LIMIT 2")
            assert len(again.rows) == 2
            assert db.plan_cache.stats.hits == 1

    def test_baked_like_pattern_variants(self):
        db = _people_db()
        with db.connect() as ses:
            ra = ses.execute("SELECT name FROM People WHERE name LIKE 'B%'")
            rb = ses.execute("SELECT name FROM People WHERE name LIKE 'D%'")
            assert ra.rows == [("Bob",)]
            assert rb.rows == [("Dee",)]
            rb2 = ses.execute("SELECT name FROM People WHERE name LIKE 'D%'")
            assert rb2.rows == [("Dee",)]
            assert db.plan_cache.stats.hits == 1

    def test_baked_in_list_variants(self):
        db = _people_db()
        with db.connect() as ses:
            ra = ses.execute("SELECT name FROM People WHERE age IN (28, 34)")
            rb = ses.execute("SELECT name FROM People WHERE age IN (41, 99)")
            assert sorted(ra.rows) == [("Ann",), ("Bob",), ("Dee",)]
            assert rb.rows == [("Cid",)]

    def test_implicit_alias_parity_on_hits(self):
        # `age + 1` has no explicit alias; its printed form embeds the
        # literal, so the slot is baked — same value hits, new value gets
        # its own variant, and column names always match an uncached parse.
        db = _people_db()
        with db.connect() as ses:
            r1 = ses.execute("SELECT age + 1 FROM People WHERE id = 1")
            r2 = ses.execute("SELECT age + 1 FROM People WHERE id = 2")
            assert r1.columns == r2.columns == ["(age + 1)"]
            assert r1.rows == [(35,)] and r2.rows == [(29,)]
            assert db.plan_cache.stats.hits == 1
            r3 = ses.execute("SELECT age + 2 FROM People WHERE id = 1")
            assert r3.columns == ["(age + 2)"]
            assert r3.rows == [(36,)]

    def test_ddl_and_analyze_invalidate(self):
        db = _people_db()
        ses = db.connect()
        ses.execute("SELECT name FROM People WHERE age = 28")
        db.catalog.analyze()  # statistics epoch moved
        ses.execute("SELECT name FROM People WHERE age = 28")
        assert db.plan_cache.stats.invalidations == 1
        assert db.plan_cache.stats.hits == 0
        ses.close()

    def test_graph_query_rebind(self):
        db = _fig2_db()
        with db.connect() as ses:
            q = (
                "SELECT g.p1_name FROM GRAPH_TABLE (G "
                "MATCH (p1:Person)-[k:Knows]->(p2:Person) "
                "WHERE p2.name = 'Bob' "
                "COLUMNS (p1.name AS p1_name)) g"
            )
            r1 = ses.execute(q)
            r2 = ses.execute(q.replace("'Bob'", "'Tom'"))
            assert sorted(r1.rows) == [("David",), ("Tom",)]
            assert sorted(r2.rows) == [("Bob",)]
            assert db.plan_cache.stats.hits == 1

    def test_lru_eviction_is_bounded(self):
        db = _people_db()
        db.plan_cache.capacity = 4
        with db.connect() as ses:
            for i in range(1, 11):
                # LIMIT is a baked slot: every distinct count is its own
                # cache variant, so ten queries make ten entries.
                ses.execute(f"SELECT name FROM People ORDER BY name LIMIT {i}")
        assert len(db.plan_cache) <= 4
        assert db.plan_cache.stats.evictions >= 6

    def test_cache_survives_data_appends(self):
        # Appends do NOT bump the catalog version: snapshots give cached
        # plans a consistent view, and the rebound plan sees new rows.
        db = _people_db()
        with db.connect() as ses:
            r1 = ses.execute("SELECT name FROM People WHERE age = 28")
            db.catalog.table("People").append((5, "Eve", 28))
            r2 = ses.execute("SELECT name FROM People WHERE age = 28")
        assert sorted(r1.rows) == [("Bob",), ("Dee",)]
        assert sorted(r2.rows) == [("Bob",), ("Dee",), ("Eve",)]
        assert db.plan_cache.stats.hits == 1

    def test_unbound_cache_objects_are_version_zero(self):
        cache = PlanCache(capacity=2)
        assert cache._catalog_version() == 0


# ---------------------------------------------------------------------- #
# sessions: lifecycle, cancellation, admission, leaks
# ---------------------------------------------------------------------- #


class TestSessionLifecycle:
    def test_ddl_via_session(self):
        catalog, _ = build_fig2_catalog()
        # Strip the pre-registered graph: register through the session.
        fresh = Catalog()
        for name in catalog.table_names():
            fresh.add_table(catalog.table(name))
        db = _track(Database(catalog=fresh))
        ddl = (
            "CREATE PROPERTY GRAPH G2 "
            "VERTEX TABLES (Person KEY (person_id), Message KEY (message_id)) "
            "EDGE TABLES (Likes SOURCE KEY (pid) REFERENCES Person (person_id) "
            "DESTINATION KEY (mid) REFERENCES Message (message_id))"
        )
        with db.connect() as ses:
            r = ses.execute(ddl)
            assert r.rows == [("ok",)]
            assert fresh.has_graph("G2")
            out = ses.execute(
                "SELECT COUNT(*) AS n FROM GRAPH_TABLE (G2 "
                "MATCH (p:Person)-[l:Likes]->(m:Message) "
                "COLUMNS (p.name AS name)) g"
            )
            assert out.rows == [(4,)]

    def test_closed_session_rejects_queries(self):
        db = _people_db()
        ses = db.connect()
        ses.close()
        with pytest.raises(SessionClosed):
            ses.execute("SELECT name FROM People")
        db.close()
        with pytest.raises(SessionClosed):
            db.connect()

    def test_submit_result(self):
        db = _people_db()
        with db.connect() as ses:
            pending = ses.submit("SELECT COUNT(*) AS n FROM People")
            assert pending.result(timeout=30).rows == [(4,)]
            assert pending.done()

    def test_submit_cancel(self):
        rows = [(i, f"n{i}", i % 50) for i in range(4000)]
        db = _people_db(rows=rows)
        with db.connect() as ses:
            # Self-joins make enough batches for a boundary check to land.
            pending = ses.submit(
                "SELECT COUNT(*) AS n FROM People p1, People p2, People p3 "
                "WHERE p1.age = p2.age AND p2.age = p3.age"
            )
            pending.cancel("test cancel")
            with pytest.raises(QueryCancelled):
                pending.result(timeout=60)

    def test_close_cancels_in_flight_queries(self):
        rows = [(i, f"n{i}", i % 50) for i in range(4000)]
        db = _people_db(rows=rows)
        ses = db.connect()
        pending = ses.submit(
            "SELECT COUNT(*) AS n FROM People p1, People p2, People p3 "
            "WHERE p1.age = p2.age AND p2.age = p3.age"
        )
        ses.close()  # cancels + joins
        assert pending.done()
        with pytest.raises((QueryCancelled, Exception)):
            pending.result(timeout=1)

    def test_no_leaked_threads_or_leases(self):
        from tests.test_lifecycle import assert_no_repro_threads

        governor = MemoryGovernor(total_rows=100_000, admission_timeout=5.0)
        db = _people_db()
        db.governor = governor
        with db.connect() as ses:
            futures = [
                ses.submit("SELECT name FROM People WHERE age >= 0 ORDER BY name")
                for _ in range(8)
            ]
            for f in futures:
                assert len(f.result(timeout=60).rows) == 4
        assert governor.active_leases == 0
        assert governor.leased_rows == 0
        # The shared pool's workers live exactly as long as the Database:
        # close() joins them (and any wire threads), leaving zero repro-*
        # threads behind.
        db.close()
        assert_no_repro_threads()

    def test_admission_error_surfaces(self):
        db = _people_db()
        db.governor = MemoryGovernor(total_rows=10, admission_timeout=0.0)
        db.config.memory_budget_rows = 100  # can never fit
        with db.connect() as ses:
            with pytest.raises(AdmissionError):
                ses.execute("SELECT name FROM People")

    def test_no_spill_files_leak(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "64")
        rows = [(i, f"name{i % 97:03d}", i % 13) for i in range(3000)]
        db = _people_db(rows=rows)
        with db.connect() as ses:
            r = ses.execute("SELECT id, name FROM People ORDER BY name, id")
            assert len(r.rows) == 3000
            expected = sorted(((i, n) for i, n, _ in rows), key=lambda t: (t[1], t[0]))
            assert r.rows == expected
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []


# ---------------------------------------------------------------------- #
# concurrency: snapshot consistency under live writers
# ---------------------------------------------------------------------- #

CHUNK = 50


class TestConcurrentSessions:
    def test_sessions_see_chunk_aligned_monotonic_counts(self):
        rows = [(i, f"n{i}", i) for i in range(CHUNK)]
        db = _people_db(rows=rows)
        table = db.catalog.table("People")
        stop = threading.Event()

        def writer():
            next_id = CHUNK
            while not stop.is_set():
                table.extend(
                    [(next_id + j, f"n{next_id + j}", next_id + j) for j in range(CHUNK)]
                )
                next_id += CHUNK
                if next_id > 40 * CHUNK:
                    break

        failures: list[str] = []

        def reader(n_queries: int):
            with db.connect() as ses:
                last = 0
                for _ in range(n_queries):
                    count = ses.execute(
                        "SELECT COUNT(*) AS n FROM People WHERE id >= 0"
                    ).rows[0][0]
                    if count % CHUNK != 0:
                        failures.append(f"torn count {count}")
                    if count < last:
                        failures.append(f"count went backwards {last} -> {count}")
                    last = count

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader, args=(25,)) for _ in range(4)]
        w.start()
        for r in readers:
            r.start()
        for r in readers:
            r.join()
        stop.set()
        w.join()
        assert failures == []

    def test_graph_results_stable_under_vertex_edge_appends(self):
        db = _fig2_db()
        person = db.catalog.table("Person")
        knows = db.catalog.table("Knows")
        q = (
            "SELECT COUNT(*) AS n FROM GRAPH_TABLE (G "
            "MATCH (p1:Person)-[k:Knows]->(p2:Person) "
            "COLUMNS (p1.name AS name)) g"
        )
        with db.connect() as ses:
            baseline = ses.execute(q).rows[0][0]
            stop = threading.Event()

            def writer():
                next_pid = 1000
                next_kid = 1000
                while not stop.is_set():
                    # Vertex first, then the edge referencing it — the
                    # global epoch order readers may observe.
                    person.append((next_pid, f"p{next_pid}", 101))
                    knows.append((next_kid, 1, next_pid, "2024-01-01"))
                    next_pid += 1
                    next_kid += 1
                    if next_pid > 1200:
                        break

            w = threading.Thread(target=writer)
            w.start()
            try:
                # The CSR index is pinned at its build version: results are
                # bit-stable no matter how many appends land mid-stream.
                for _ in range(20):
                    assert ses.execute(q).rows[0][0] == baseline
            finally:
                stop.set()
                w.join()

    def test_many_sessions_shared_cache(self):
        db = _people_db()
        errors: list[str] = []

        def client(worker_id: int):
            with db.connect() as ses:
                for i in range(10):
                    age = (28, 34, 41)[i % 3]
                    got = sorted(
                        ses.execute(
                            f"SELECT name FROM People WHERE age = {age}"
                        ).rows
                    )
                    want = {
                        28: [("Bob",), ("Dee",)],
                        34: [("Ann",)],
                        41: [("Cid",)],
                    }[age]
                    if got != want:
                        errors.append(f"worker {worker_id}: {age} -> {got}")

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = db.plan_cache.stats
        assert stats.hits + stats.misses == 60
        assert stats.hits >= 50  # one shape, one miss per racy optimize at worst


# ---------------------------------------------------------------------- #
# satellites: dictionary demotion + dictionary-aware ORDER BY
# ---------------------------------------------------------------------- #


@pytest.fixture()
def dict_backend():
    """Force the dict backend (the suite may run under REPRO_STORAGE=...)."""
    set_storage_backend("dict")
    yield
    set_storage_backend(None)


class TestDictDemotion:
    def test_unique_heavy_bulk_load_demotes_to_list(self, dict_backend, monkeypatch):
        monkeypatch.setenv("REPRO_DICT_DEMOTE_MIN_ROWS", "100")
        catalog = Catalog()
        table = catalog.create_table(
            TableSchema(
                "U",
                [Column("id", DataType.INT), Column("payload", DataType.STRING)],
                primary_key="id",
            ),
            rows=[(i, f"unique-payload-{i}") for i in range(500)],
        )
        assert not is_dict(table.columns["payload"])
        assert list(table.column("payload"))[:2] == [
            "unique-payload-0",
            "unique-payload-1",
        ]

    def test_repetitive_bulk_load_stays_dictionary(self, dict_backend, monkeypatch):
        monkeypatch.setenv("REPRO_DICT_DEMOTE_MIN_ROWS", "100")
        catalog = Catalog()
        table = catalog.create_table(
            TableSchema(
                "R",
                [Column("id", DataType.INT), Column("city", DataType.STRING)],
                primary_key="id",
            ),
            rows=[(i, f"city{i % 10}") for i in range(500)],
        )
        assert is_dict(table.columns["city"])

    def test_demotion_is_loss_free(self, monkeypatch):
        monkeypatch.setenv("REPRO_DICT_DEMOTE_MIN_ROWS", "10")
        monkeypatch.setenv("REPRO_DICT_DEMOTE_RATIO", "0.5")
        col = DictColumn()
        col.extend(["a", "b", "a", "b"])  # low cardinality prefix
        values = [f"v{i}" for i in range(100)]
        with pytest.raises(DictDemotion):
            col.extend(values)

    def test_single_row_appends_never_demote(self):
        col = DictColumn()
        for i in range(50):
            col.append(f"unique{i}")
        assert len(col) == 50


class TestDictOrderBy:
    def _db(self, n=2000, cities=7):
        rows = [(i, f"city{(i * 31) % cities}", i % 5) for i in range(n)]
        catalog = Catalog()
        catalog.create_table(
            TableSchema(
                "T",
                [
                    Column("id", DataType.INT),
                    Column("city", DataType.STRING),
                    Column("b", DataType.INT),
                ],
                primary_key="id",
            ),
            rows=rows,
        )
        return _track(Database(catalog=catalog)), rows

    def test_parity_with_python_sort(self):
        db, rows = self._db()
        with db.connect() as ses:
            r = ses.execute("SELECT id, city FROM T WHERE b >= 2 ORDER BY city, id")
        expected = sorted(
            ((i, c) for i, c, b in rows if b >= 2), key=lambda t: (t[1], t[0])
        )
        assert r.rows == expected

    def test_desc_and_mixed_keys(self):
        db, rows = self._db(n=500)
        with db.connect() as ses:
            r = ses.execute("SELECT id, city FROM T ORDER BY city DESC, id")
        expected = sorted(((i, c) for i, c, _ in rows), key=lambda t: t[0])
        expected.sort(key=lambda t: t[1], reverse=True)
        assert r.rows == expected

    def test_order_by_expression_key_still_works(self):
        db, rows = self._db(n=300)
        with db.connect() as ses:
            r = ses.execute("SELECT id FROM T ORDER BY id * -1 LIMIT 5")
        assert [t[0] for t in r.rows] == [299, 298, 297, 296, 295]

    def test_spill_path_falls_back_to_value_domain(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_SPILL_THRESHOLD", "128")
        db, rows = self._db(n=2000)
        with db.connect() as ses:
            r = ses.execute("SELECT id, city FROM T ORDER BY city, id")
        expected = sorted(((i, c) for i, c, _ in rows), key=lambda t: (t[1], t[0]))
        assert r.rows == expected
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []


class TestServingKnob:
    """REPRO_SERVING=1: System text queries run through a plan cache."""

    Q = (
        "SELECT g.p1_name FROM GRAPH_TABLE (G "
        "MATCH (p1:Person)-[k:Knows]->(p2:Person) "
        "WHERE p2.name = 'Bob' "
        "COLUMNS (p1.name AS p1_name)) g"
    )

    def test_system_text_runs_hit_the_cache(self, fig2, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING", "1")
        catalog, _, _ = fig2
        system = make_system("relgo", catalog)
        assert system.plan_cache is not None
        r1 = system.run(self.Q, query_name="q")
        r2 = system.run(self.Q.replace("'Bob'", "'Tom'"), query_name="q")
        assert r1.ok() and r2.ok()
        assert system.plan_cache.stats.hits == 1
        assert system.plan_cache.stats.misses == 1

    def test_armed_results_match_unarmed(self, fig2, monkeypatch):
        monkeypatch.delenv("REPRO_SERVING", raising=False)
        catalog, _, _ = fig2
        baseline = make_system("relgo", catalog)
        assert baseline.plan_cache is None
        want = baseline.optimize(self.Q)
        monkeypatch.setenv("REPRO_SERVING", "1")
        armed = make_system("relgo", catalog)
        # Second optimize of the shape is a rebind of the cached template;
        # the engine must produce the same rows either way.
        armed.optimize(self.Q)
        got = armed.optimize(self.Q)
        assert armed.plan_cache.stats.hits == 1
        from repro.exec.context import execute_plan

        assert (
            execute_plan(got.physical).sorted_rows()
            == execute_plan(want.physical).sorted_rows()
        )

    def test_bind_errors_still_classified(self, fig2, monkeypatch):
        monkeypatch.setenv("REPRO_SERVING", "1")
        catalog, _, _ = fig2
        system = make_system("relgo", catalog)
        result = system.run("SELECT nope FROM Nowhere", query_name="bad")
        assert result.status == "error"
        assert result.detail.startswith("bind:")


# ---------------------------------------------------------------------- #
# DB-API parameters: `?` placeholders on execute/submit
# ---------------------------------------------------------------------- #


class TestQueryParams:
    def test_execute_with_params(self):
        db = _people_db()
        with db.connect() as ses:
            r = ses.execute("SELECT name FROM People WHERE age = ?", params=[28])
        assert sorted(r.rows) == [("Bob",), ("Dee",)]

    def test_params_share_cache_with_literal_form(self):
        # `age = ?` with params=[28] and `age = 28` normalize identically:
        # one fingerprint, one template, shared hits.
        db = _people_db()
        with db.connect() as ses:
            ses.execute("SELECT name FROM People WHERE age = ?", params=[28])
            r = ses.execute("SELECT name FROM People WHERE age = 41")
        assert r.rows == [("Cid",)]
        assert db.plan_cache.stats.misses == 1
        assert db.plan_cache.stats.hits == 1

    def test_submit_with_params(self):
        db = _people_db()
        with db.connect() as ses:
            pending = ses.submit(
                "SELECT name FROM People WHERE age = ?", params=[41]
            )
            assert pending.result(timeout=30).rows == [("Cid",)]

    def test_param_count_mismatch_is_typed(self):
        db = _people_db()
        with db.connect() as ses:
            with pytest.raises(ParameterError):
                ses.execute(
                    "SELECT name FROM People WHERE age = ?", params=[28, 41]
                )
            with pytest.raises(ParameterError):
                ses.execute("SELECT name FROM People WHERE age = ?")

    def test_unbindable_param_type_is_typed(self):
        db = _people_db()
        with db.connect() as ses:
            with pytest.raises(ParameterError):
                ses.execute(
                    "SELECT name FROM People WHERE age = ?", params=[True]
                )

    def test_placeholder_without_params_machinery_is_a_parse_error(self):
        # A plain (non-parameterizing) parse must reject `?` with a clear
        # message, not an "unexpected character".
        from repro.core.sqlpgq.parser import Parser

        with pytest.raises(ParseError, match="placeholder"):
            Parser("SELECT a FROM t WHERE x = ?").parse_statement()

    def test_placeholder_in_baked_position(self):
        # LIMIT consumes its literal structurally, so a `?` there is baked
        # into the plan shape: each distinct value is its own cache variant.
        db = _people_db()
        with db.connect() as ses:
            r2 = ses.execute(
                "SELECT name FROM People ORDER BY name LIMIT ?", params=[2]
            )
            r3 = ses.execute(
                "SELECT name FROM People ORDER BY name LIMIT ?", params=[3]
            )
            again = ses.execute(
                "SELECT name FROM People ORDER BY name LIMIT ?", params=[2]
            )
        assert len(r2.rows) == 2 and len(r3.rows) == 3 and len(again.rows) == 2
        assert db.plan_cache.stats.misses == 2
        assert db.plan_cache.stats.hits == 1

    def test_mixed_placeholders_and_literals(self):
        db = _people_db()
        with db.connect() as ses:
            r = ses.execute(
                "SELECT name FROM People WHERE age = ? AND id >= 1 "
                "ORDER BY name LIMIT ?",
                params=[28, 1],
            )
        assert r.rows == [("Bob",)]


# ---------------------------------------------------------------------- #
# prepared statements
# ---------------------------------------------------------------------- #


class TestPreparedStatements:
    def test_prepare_execute_rebind(self):
        db = _people_db()
        with db.connect() as ses:
            stmt = ses.prepare("SELECT name FROM People WHERE age = ?")
            assert sorted(stmt.execute([28]).rows) == [("Bob",), ("Dee",)]
            assert stmt.execute([41]).rows == [("Cid",)]
            stmt.close()

    def test_hot_path_skips_scan_and_frontend(self, monkeypatch):
        # After the first execute compiles the template, later executes
        # bind straight into it: no parser, no binder, and no shared-cache
        # probe (which is where the fingerprint scan would happen).
        db = _people_db()
        ses = db.connect()
        stmt = ses.prepare("SELECT name FROM People WHERE age = ?")
        stmt.execute([28])
        import repro.core.sqlpgq.binder as binder_mod
        import repro.core.sqlpgq.parser as parser_mod

        def boom(*a, **k):  # pragma: no cover - would mean a re-prepare
            raise AssertionError("frontend invoked on prepared hot path")

        monkeypatch.setattr(parser_mod, "Parser", boom)
        monkeypatch.setattr(binder_mod, "bind_query", boom)
        monkeypatch.setattr(db.plan_cache, "lookup", boom)
        assert stmt.execute([34]).rows == [("Ann",)]
        ses.close()

    def test_epoch_invalidation_reprepares_transparently(self):
        db = _people_db()
        with db.connect() as ses:
            stmt = ses.prepare("SELECT name FROM People WHERE age = ?")
            assert sorted(stmt.execute([28]).rows) == [("Bob",), ("Dee",)]
            db.catalog.analyze()  # DDL-equivalent: schema/stats epoch bump
            # Same handle, new epoch: the stale template is dropped and the
            # statement recompiles against the new catalog — same answer.
            assert sorted(stmt.execute([28]).rows) == [("Bob",), ("Dee",)]
            assert stmt.execute([41]).rows == [("Cid",)]

    def test_param_mismatch_is_typed(self):
        db = _people_db()
        with db.connect() as ses:
            stmt = ses.prepare("SELECT name FROM People WHERE age = ?")
            with pytest.raises(ParameterError):
                stmt.execute([1, 2])
            with pytest.raises(ParameterError):
                stmt.execute()

    def test_concurrent_execute_on_one_handle(self):
        db = _people_db()
        want = {28: [("Bob",), ("Dee",)], 34: [("Ann",)], 41: [("Cid",)]}
        errors: list[str] = []
        with db.connect() as ses:
            stmt = ses.prepare("SELECT name FROM People WHERE age = ?")

            def worker(worker_id: int):
                for i in range(10):
                    age = (28, 34, 41)[(worker_id + i) % 3]
                    got = sorted(stmt.execute([age]).rows)
                    if got != want[age]:
                        errors.append(f"worker {worker_id}: {age} -> {got}")

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []

    def test_closed_statement_rejects_execute(self):
        db = _people_db()
        with db.connect() as ses:
            stmt = ses.prepare("SELECT name FROM People WHERE age = ?")
            stmt.close()
            with pytest.raises(SessionClosed):
                stmt.execute([28])

    def test_session_close_closes_statements(self):
        db = _people_db()
        ses = db.connect()
        stmt = ses.prepare("SELECT name FROM People WHERE age = ?")
        ses.close()
        with pytest.raises(SessionClosed):
            stmt.execute([28])

    def test_baked_placeholder_variants(self):
        db = _people_db()
        with db.connect() as ses:
            stmt = ses.prepare("SELECT name FROM People ORDER BY name LIMIT ?")
            assert len(stmt.execute([2]).rows) == 2
            assert len(stmt.execute([3]).rows) == 3
            assert len(stmt.execute([2]).rows) == 2

    def test_database_prepare_deprecation_shim(self):
        db = _fig2_db()  # warmup() already called; the shim must still work
        with pytest.warns(DeprecationWarning, match="warmup"):
            db.prepare()


# ---------------------------------------------------------------------- #
# the shared worker pool
# ---------------------------------------------------------------------- #


class TestWorkerPool:
    def test_pool_bounds_concurrency(self):
        # 8 sessions x 4 in-flight queries each on a pool of 4: every
        # query completes, and no more than 4 worker threads ever start.
        db = _people_db(workers=4)
        sessions = [db.connect() for _ in range(8)]
        try:
            futures = [
                ses.submit("SELECT name FROM People WHERE age = ?", params=[28])
                for ses in sessions
                for _ in range(4)
            ]
            for f in futures:
                assert sorted(f.result(timeout=60).rows) == [("Bob",), ("Dee",)]
        finally:
            for ses in sessions:
                ses.close()
        assert db.pool.worker_count <= 4

    def test_cancel_while_queued_completes_immediately(self):
        # One worker, one slow query hogging it: queued queries cancelled
        # behind it complete as QueryCancelled without waiting for a worker.
        rows = [(i, f"n{i}", i % 50) for i in range(4000)]
        db = _people_db(rows=rows, workers=1)
        with db.connect() as ses:
            slow = ses.submit(
                "SELECT COUNT(*) AS n FROM People p1, People p2, People p3 "
                "WHERE p1.age = p2.age AND p2.age = p3.age"
            )
            queued = [ses.submit("SELECT name FROM People") for _ in range(4)]
            for q in queued:
                q.cancel("jumped the queue")
            for q in queued:
                with pytest.raises(QueryCancelled):
                    q.result(timeout=10)
            slow.cancel("done probing")
            with pytest.raises(QueryCancelled):
                slow.result(timeout=60)

    def test_submit_after_database_close_raises(self):
        db = _people_db()
        ses = db.connect()
        db.close()
        with pytest.raises(SessionClosed):
            ses.submit("SELECT name FROM People")

    def test_error_notes_carry_query_context(self):
        db = _people_db()
        with db.connect() as ses:
            pending = ses.submit("SELECT name FROM People WHERE age = ?")
            with pytest.raises(ParameterError) as info:
                pending.result(timeout=30)
        notes = getattr(info.value, "__notes__", [])
        assert any("SELECT name FROM People" in n for n in notes)

    def test_worker_size_resolution(self, monkeypatch):
        from repro.serving.pool import DEFAULT_WORKERS, WorkerPool, resolve_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == DEFAULT_WORKERS
        assert resolve_workers(2) == 2
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(None) == 7
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ValueError):
            resolve_workers(None)
        pool = WorkerPool(2)
        assert pool.size == 2 and pool.worker_count == 0  # lazy spawn
        pool.close()
