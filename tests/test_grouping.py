"""Grouped aggregation / distinct correctness: NaN-canonical keys and the
factorize + segment-reduction engine.

Four layers of coverage:

* **Semantics regressions** — the NaN grouping bug this engine fixed:
  ``GROUP BY`` / ``DISTINCT`` over NaN-bearing float columns previously
  emitted one group per NaN row (``(nan, 1), (nan, 1)``); now every
  engine/backend combination yields a single NaN group.  NULL keys form one
  group; MIN/MAX order NaN above every non-NaN value (the Postgres rule).
* **Engine parity** — row vs columnar execution of identical plans across
  the numpy / array / list storage backends, including batch-boundary group
  merges (tiny batch sizes force groups to span many batches).
* **Property test** — randomized key/value columns (NULLs, NaNs, mixed
  cardinality) against an order-independent reference aggregation.
* **Kernel units** — factorize / combine_codes / canonicalization helpers,
  typed-state promotion and demotion, the StreamingDistinct fallback.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import execute_plan, numpy_available, resolve_spill, set_numpy_enabled
from repro.exec.grouping import (
    NAN,
    GroupedAggregation,
    StreamingDistinct,
    bindings_equal,
    canonical,
    canonical_column,
    canonical_row,
    combine_codes,
    factorize,
    make_accumulator,
)
from repro.relational.column import set_storage_backend
from repro.relational.expr import col
from repro.relational.logical import AggregateSpec
from repro.relational.physical import AggregateOp, DistinctOp, SeqScan
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import DataType

nan = float("nan")


def norm_rows(rows):
    """Rows in canonical order with NaN made comparable (NaN != NaN breaks
    both sorting and equality, so parity checks normalize it first)."""
    return sorted(
        (tuple("NaN" if v != v else v for v in row) for row in rows), key=repr
    )


@pytest.fixture(params=["numpy", "array", "list"])
def backend(request):
    mode = request.param
    if mode == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    set_numpy_enabled(mode == "numpy")
    set_storage_backend("list" if mode == "list" else "typed")
    yield mode
    set_numpy_enabled(None)
    set_storage_backend(None)


def _table(columns: dict[str, tuple[DataType, list]]) -> Table:
    schema = TableSchema(
        "t", [Column(name, dtype) for name, (dtype, _) in columns.items()]
    )
    table = Table(schema)
    table.extend_columns([values for _, values in columns.values()], validate=False)
    return table


def _run_both(plan, batch_size=None):
    columnar = execute_plan(plan, columnar=True, batch_size=batch_size)
    row = execute_plan(plan, columnar=False, batch_size=batch_size)
    assert norm_rows(columnar.rows) == norm_rows(row.rows)
    if resolve_spill(None) is None:
        # Peak accounting is protocol-comparable only unspilled: under a
        # tiny spill threshold (the tier1-spill CI leg) the columnar path
        # may charge one full batch before its first export.
        assert columnar.peak_buffered_rows <= row.peak_buffered_rows
    return columnar


# --------------------------------------------------------------------- #
# NaN / NULL key semantics
# --------------------------------------------------------------------- #


def test_nan_keys_form_one_group(backend):
    table = _table({"x": (DataType.FLOAT, [nan, nan, 1.0])})
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.x"), "x")],
        [AggregateSpec("COUNT", None, "cnt")],
    )
    result = _run_both(plan)
    # The bug this pins: both engines used to emit (nan, 1), (nan, 1).
    assert norm_rows(result.rows) == norm_rows([(nan, 2), (1.0, 1)])


def test_nan_rows_dedup_together(backend):
    table = _table({"x": (DataType.FLOAT, [nan, 1.0, nan, nan, 1.0])})
    plan = DistinctOp(SeqScan(table, "t"))
    result = _run_both(plan)
    assert norm_rows(result.rows) == norm_rows([(nan,), (1.0,)])


def test_null_keys_form_one_group(backend):
    table = _table({"x": (DataType.STRING, [None, "a", None, "a", None])})
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.x"), "x")],
        [AggregateSpec("COUNT", None, "cnt")],
    )
    result = _run_both(plan)
    assert norm_rows(result.rows) == norm_rows([(None, 3), ("a", 2)])


def test_multi_key_nan_and_null_grouping(backend):
    table = _table(
        {
            "k": (DataType.STRING, ["a", None, "a", None, "a", "a"]),
            "f": (DataType.FLOAT, [nan, nan, nan, 1.5, 1.5, nan]),
            "v": (DataType.FLOAT, [1.0, 2.0, 3.0, None, 4.0, None]),
        }
    )
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k"), (col("t.f"), "f")],
        [
            AggregateSpec("COUNT", None, "cnt"),
            AggregateSpec("SUM", col("t.v"), "s"),
            AggregateSpec("MIN", col("t.v"), "mn"),
            AggregateSpec("MAX", col("t.v"), "mx"),
            AggregateSpec("AVG", col("t.v"), "av"),
        ],
    )
    result = _run_both(plan)
    assert norm_rows(result.rows) == norm_rows(
        [
            ("a", nan, 3, 4.0, 1.0, 3.0, 2.0),
            (None, nan, 1, 2.0, 2.0, 2.0, 2.0),
            (None, 1.5, 1, None, None, None, None),
            ("a", 1.5, 1, 4.0, 4.0, 4.0, 4.0),
        ]
    )


def test_min_max_nan_orders_above_everything(backend):
    # Postgres rule, order-independently: MIN is NaN only when all inputs
    # are NaN; MAX is NaN when any input is.
    for values in ([nan, 1.0, 3.0], [1.0, nan, 3.0], [3.0, 1.0, nan]):
        table = _table({"v": (DataType.FLOAT, list(values))})
        plan = AggregateOp(
            SeqScan(table, "t"),
            [],
            [
                AggregateSpec("MIN", col("t.v"), "mn"),
                AggregateSpec("MAX", col("t.v"), "mx"),
            ],
        )
        result = _run_both(plan)
        assert norm_rows(result.rows) == norm_rows([(1.0, nan)])
    all_nan = _table({"v": (DataType.FLOAT, [nan, nan])})
    plan = AggregateOp(
        SeqScan(all_nan, "t"), [], [AggregateSpec("MIN", col("t.v"), "mn")]
    )
    assert norm_rows(_run_both(plan).rows) == norm_rows([(nan,)])


# --------------------------------------------------------------------- #
# shape edge cases + batch-boundary merges
# --------------------------------------------------------------------- #


def test_empty_input_grouped_and_global(backend):
    table = _table({"k": (DataType.INT, []), "v": (DataType.FLOAT, [])})
    grouped = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k")],
        [AggregateSpec("COUNT", None, "cnt")],
    )
    assert _run_both(grouped).rows == []
    no_group = AggregateOp(
        SeqScan(table, "t"),
        [],
        [
            AggregateSpec("COUNT", None, "cnt"),
            AggregateSpec("SUM", col("t.v"), "s"),
        ],
    )
    assert _run_both(no_group).rows == [(0, None)]
    assert _run_both(DistinctOp(SeqScan(table, "t"))).rows == []


def test_groups_merge_across_batch_boundaries(backend):
    n = 50
    table = _table(
        {
            "k": (DataType.INT, [i % 3 for i in range(n)]),
            "f": (DataType.FLOAT, [nan if i % 4 == 0 else 0.5 for i in range(n)]),
            "v": (DataType.INT, list(range(n))),
        }
    )
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k"), (col("t.f"), "f")],
        [
            AggregateSpec("COUNT", None, "cnt"),
            AggregateSpec("SUM", col("t.v"), "s"),
            AggregateSpec("MIN", col("t.v"), "mn"),
            AggregateSpec("MAX", col("t.v"), "mx"),
        ],
    )
    reference = norm_rows(_run_both(plan).rows)
    for batch_size in (1, 3, 7, 64):
        result = _run_both(plan, batch_size=batch_size)
        assert norm_rows(result.rows) == reference, batch_size
    distinct = DistinctOp(
        SeqScan(table, "t", projected=["k", "f"])
    )
    dedup_reference = norm_rows(_run_both(distinct).rows)
    for batch_size in (1, 3, 7):
        assert norm_rows(_run_both(distinct, batch_size=batch_size).rows) == (
            dedup_reference
        ), batch_size


def test_distinct_preserves_first_arrival_order(backend):
    table = _table({"x": (DataType.INT, [3, 1, 3, 2, 1, 3])})
    plan = DistinctOp(SeqScan(table, "t"))
    for batch_size in (None, 2):
        columnar = execute_plan(plan, columnar=True, batch_size=batch_size)
        row = execute_plan(plan, columnar=False, batch_size=batch_size)
        assert columnar.rows == row.rows == [(3,), (1,), (2,)]


def test_high_cardinality_grouping_parity(backend):
    # Enough distinct keys to engage the typed searchsorted/scatter state
    # on the numpy backend; results must match the dict engines exactly.
    n = 1500
    table = _table(
        {
            "k": (DataType.INT, [(i * 7919) % 700 for i in range(n)]),
            "v": (DataType.FLOAT, [float(i % 97) for i in range(n)]),
        }
    )
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k")],
        [
            AggregateSpec("COUNT", None, "cnt"),
            AggregateSpec("SUM", col("t.v"), "s"),
            AggregateSpec("MIN", col("t.v"), "mn"),
            AggregateSpec("MAX", col("t.v"), "mx"),
            AggregateSpec("AVG", col("t.v"), "av"),
        ],
    )
    result = _run_both(plan, batch_size=256)
    assert len(result.rows) == 700


# --------------------------------------------------------------------- #
# property test vs an order-independent reference
# --------------------------------------------------------------------- #

key_values = st.one_of(
    st.none(),
    st.sampled_from([nan, -1.5, 0.5, 2.5]),
    st.integers(min_value=-2, max_value=2).map(float),
)
agg_values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5).map(float))


def _reference_aggregate(keys, values):
    groups: dict = {}
    for k, v in zip(keys, values):
        cell = groups.setdefault(canonical(k), [0, 0, 0.0, None, None])
        cell[0] += 1
        if v is not None:
            cell[1] += 1
            cell[2] += v
            cell[3] = v if cell[3] is None else min(cell[3], v)
            cell[4] = v if cell[4] is None else max(cell[4], v)
    out = []
    for k, (cnt, vcnt, total, mn, mx) in groups.items():
        out.append(
            (
                k,
                cnt,
                total if vcnt else None,
                mn,
                mx,
                total / vcnt if vcnt else None,
            )
        )
    return out


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(st.tuples(key_values, agg_values), max_size=120),
    batch_size=st.sampled_from([1, 2, 7, 1024]),
)
def test_grouped_aggregation_matches_reference(rows, batch_size):
    keys = [k for k, _ in rows]
    values = [v for _, v in rows]
    table = _table(
        {"k": (DataType.FLOAT, keys), "v": (DataType.FLOAT, values)}
    )
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k")],
        [
            AggregateSpec("COUNT", None, "cnt"),
            AggregateSpec("SUM", col("t.v"), "s"),
            AggregateSpec("MIN", col("t.v"), "mn"),
            AggregateSpec("MAX", col("t.v"), "mx"),
            AggregateSpec("AVG", col("t.v"), "av"),
        ],
    )
    expected = norm_rows(_reference_aggregate(keys, values))
    columnar = execute_plan(plan, columnar=True, batch_size=batch_size)
    row = execute_plan(plan, columnar=False, batch_size=batch_size)
    assert norm_rows(columnar.rows) == expected
    assert norm_rows(row.rows) == expected


# --------------------------------------------------------------------- #
# kernel units
# --------------------------------------------------------------------- #


def test_canonical_helpers():
    assert canonical(nan) is NAN
    assert canonical(1.5) == 1.5
    assert canonical(None) is None
    row = (1, "a", None)
    assert canonical_row(row) is row
    patched = canonical_row((1.0, nan, nan))
    assert patched[1] is NAN and patched[2] is NAN
    clean = [1.0, 2.0]
    assert canonical_column(clean) is clean
    assert canonical_column([1.0, nan])[1] is NAN
    assert bindings_equal(nan, nan)
    assert bindings_equal(1, 1.0)
    assert not bindings_equal(nan, 1.0)


def test_factorize_dict_path_collapses_nan_and_none():
    codes, uniques = factorize([nan, None, nan, "a", None], 5)
    assert list(codes) == [0, 1, 0, 2, 1]
    assert uniques[0] is NAN and uniques[1] is None and uniques[2] == "a"


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_factorize_ndarray_collapses_nan():
    import numpy as np

    try:
        set_numpy_enabled(True)
        codes, uniques = factorize(np.array([2.0, nan, 1.0, nan]), 4)
        assert uniques == [1.0, 2.0] + [uniques[-1]]
        assert uniques[-1] != uniques[-1]  # canonical NaN last
        assert list(codes) == [1, 2, 0, 2]
    finally:
        set_numpy_enabled(None)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_combine_codes_overflow_returns_none():
    try:
        set_numpy_enabled(True)
        wide = [(list(range(4)), list(range(1 << 16)))] * 4
        assert combine_codes(wide, 4) is None
    finally:
        set_numpy_enabled(None)


def test_accumulator_nan_rules():
    for func, seqs, expected in [
        ("MIN", ([nan, 1.0], [1.0, nan]), 1.0),
        ("MAX", ([nan, 1.0], [1.0, nan]), nan),
    ]:
        for seq in seqs:
            initial, update, final = make_accumulator(func)
            cell = initial
            for v in seq:
                cell = update(cell, v)
            got = final(cell)
            assert (got != got) if expected != expected else got == expected


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_typed_state_demotes_on_ineligible_batch():
    try:
        set_numpy_enabled(True)
        import numpy as np

        engine = GroupedAggregation(1, ["COUNT", "SUM"])
        keys = np.arange(500)  # high-cardinality first batch -> typed state
        engine.consume([keys], [None, keys.astype(float)], 500)
        assert engine._array is not None
        # A list-backed batch (e.g. a computed expression) demotes to the
        # dict engine without losing any state.
        engine.consume([[0, 0, 499]], [None, [1.0, None, 2.0]], 3)
        assert engine._array is None
        columns = engine.result_columns()
        assert engine.num_groups == 500
        by_key = dict(zip(columns[0], zip(columns[1], columns[2])))
        assert by_key[0] == (3, 1.0)  # 0.0 from batch 1, 1.0 + skipped NULL
        assert by_key[499] == (2, 501.0)
        assert by_key[1] == (1, 1.0)
    finally:
        set_numpy_enabled(None)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_streaming_distinct_typed_state_on_near_unique_data():
    # A single sortable key column keeps its seen-state typed (sorted
    # ndarray + searchsorted) at any distinct ratio — near-unique data no
    # longer drops to the per-row walk.
    try:
        set_numpy_enabled(True)
        import numpy as np

        state = StreamingDistinct()
        kept = []
        for start in range(0, 4096, 1024):
            column = np.arange(start, start + 1024)
            kept.extend(state.positions([column], 1024))
        assert state._typed_seen is not None  # typed seen-state engaged
        assert not state._seen
        assert state.seen_count == 4096
        # Repeats resolve against the sorted state, first-in-batch wins.
        assert state.positions([np.asarray([0, 5000, 5000, 4095])], 4) == [1]
        # A list-backed batch demotes the typed state into the seen-set
        # (shared key format: 1-tuples), survivors unchanged.
        assert state.positions([[0, 4095, 6000]], 3) == [2]
        assert state._typed_seen is None
        assert state.seen_count == 4098
    finally:
        set_numpy_enabled(None)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_streaming_distinct_falls_back_on_near_unique_data():
    # Multi-column keys still use the factorize path, whose cumulative
    # distinct-ratio fallback drops near-unique data to the row walk.
    try:
        set_numpy_enabled(True)
        import numpy as np

        state = StreamingDistinct()
        kept = []
        for start in range(0, 4096, 1024):
            column = np.arange(start, start + 1024)
            kept.extend(state.positions([column, column], 1024))
        assert not state._vectorize  # adaptive fallback engaged
        assert state.seen_count == 4096
        # Fallback path and vectorized path share the seen-key format.
        assert state.positions([[0, 4095, 5000], [0, 4095, 5000]], 3) == [2]
    finally:
        set_numpy_enabled(None)


def test_all_distinct_uses_canonical_binding_equality(fig2):
    # Bound rowids are ints, so this exercises the vectorized pairwise
    # mask against the reference set semantics on a real pattern.
    from repro.exec import ExecutionContext
    from repro.graph.physical import AllDistinct, Expand, ScanVertex

    catalog, mapping, index = fig2
    hop = Expand(
        ScanVertex(mapping, "a", "Person"),
        index,
        mapping,
        "a",
        "b",
        "Person",
        "Knows",
        "out",
    )
    two_hop = Expand(hop, index, mapping, "b", "c", "Person", "Knows", "out")
    distinct = AllDistinct(two_hop, kind="v")
    columnar = [
        row
        for cb in distinct.columnar_batches(ExecutionContext())
        for row in cb.to_rows()
    ]
    rows = [row for b in distinct.batches(ExecutionContext()) for row in b]
    assert sorted(columnar) == sorted(rows)
    assert columnar, "the pattern must match"
    assert all(len({row[0], row[1], row[2]}) == 3 for row in columnar)


def test_avg_is_exact_over_merges(backend):
    table = _table({"v": (DataType.FLOAT, [float(i) for i in range(10)])})
    plan = AggregateOp(
        SeqScan(table, "t"), [], [AggregateSpec("AVG", col("t.v"), "av")]
    )
    result = _run_both(plan, batch_size=3)
    assert math.isclose(result.rows[0][0], 4.5)


# --------------------------------------------------------------------- #
# review regressions
# --------------------------------------------------------------------- #


def test_count_arg_skips_nulls_with_ndarray_key(backend):
    # Regression: the COUNT-only vectorized shortcut must not use group
    # sizes when the counted column can hold NULLs.
    table = _table(
        {
            "k": (DataType.INT, [1, 1, 2]),
            "s": (DataType.STRING, [None, "a", None]),
        }
    )
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k")],
        [AggregateSpec("COUNT", col("t.s"), "cnt")],
    )
    result = _run_both(plan)
    assert norm_rows(result.rows) == norm_rows([(1, 1), (2, 0)])


def test_int_sum_beyond_int64_stays_exact(backend):
    # Regression: int64 reduceat/scatter sums must not wrap; magnitudes
    # that could overflow take the exact Python-int path (or demote the
    # typed state before wrapping).
    big = 1 << 62
    table = _table(
        {
            "k": (DataType.INT, [1, 1, 1, 1]),
            "v": (DataType.INT, [big, big, big, big]),
        }
    )
    plan = AggregateOp(
        SeqScan(table, "t"),
        [(col("t.k"), "k")],
        [AggregateSpec("SUM", col("t.v"), "s")],
    )
    result = _run_both(plan, batch_size=2)
    assert result.rows == [(1, 4 * big)]


def test_sorted_rows_deterministic_with_nan():
    from repro.exec.context import QueryResult

    a = QueryResult(["x", "c"], [(float("nan"), 2), (float("nan"), 1)], 0.0)
    b = QueryResult(["x", "c"], [(float("nan"), 1), (float("nan"), 2)], 0.0)
    assert norm_rows(a.sorted_rows()) == norm_rows(b.sorted_rows())
    assert [r[1] for r in a.sorted_rows()] == [r[1] for r in b.sorted_rows()]
