"""Lemma 1's transformation and the heuristic rules, checked semantically.

The central invariant (the "lossless" of Lemma 1): for random patterns the
graph-agnostic translation executed relationally produces exactly the
reference matcher's results.  Likewise FilterIntoMatchRule must never change
query results, only plans.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import RelGoConfig, RelGoFramework
from repro.core.rules import apply_filter_into_match, apply_trim_and_fuse
from repro.core.spjm import GraphTableClause, MatchColumn, SPJMQuery
from repro.core.transform import translate_match
from repro.graph.matching import match_pattern
from repro.graph.pattern import PatternEdge, PatternGraph, PatternVertex
from repro.relational.expr import col, eq, gt, lit

from tests.conftest import build_fig2_catalog


@pytest.fixture(scope="module")
def fig2m():
    from repro.graph.index import build_graph_index

    catalog, mapping = build_fig2_catalog()
    index = build_graph_index(mapping)
    catalog.register_graph_index(index)
    return catalog, mapping, index


@st.composite
def fig2_patterns(draw):
    """Random connected patterns over the Fig 2 schema."""
    n = draw(st.integers(1, 4))
    labels = [draw(st.sampled_from(["Person", "Message"])) for _ in range(n)]
    vertices = [PatternVertex(f"v{i}", labels[i]) for i in range(n)]
    edges = []
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        a, b = f"v{j}", f"v{i}"
        la, lb = labels[j], labels[i]
        candidates = []
        if la == "Person" and lb == "Person":
            candidates = [("Knows", a, b), ("Knows", b, a)]
        elif la == "Person" and lb == "Message":
            candidates = [("Likes", a, b)]
        elif la == "Message" and lb == "Person":
            candidates = [("Likes", b, a)]
        else:
            # Message-Message is unreachable; connect via nothing -> force
            # a Person label instead.
            return draw(fig2_patterns())
        label, src, dst = draw(st.sampled_from(candidates))
        edges.append(PatternEdge(f"e{i}", label, src, dst))
    pattern = PatternGraph(vertices, edges)
    if not pattern.is_connected():
        return draw(fig2_patterns())
    return pattern


@settings(max_examples=60, deadline=None)
@given(fig2_patterns())
def test_lemma1_translation_is_lossless(pattern):
    """Graph-agnostic SPJ execution == reference matcher (Lemma 1)."""
    catalog, mapping = build_fig2_catalog()
    from repro.graph.index import build_graph_index

    index = build_graph_index(mapping)
    catalog.register_graph_index(index)
    vm = mapping.vertex("Person")
    columns = [
        MatchColumn(name, "person_id" if v.label == "Person" else "message_id", f"id_{name}")
        for name, v in pattern.vertices.items()
    ]
    clause = GraphTableClause("G", pattern, columns)
    query = SPJMQuery(graph_table=clause)
    framework = RelGoFramework(
        catalog, "G", RelGoConfig(graph_aware=False, use_graph_index=False)
    )
    result, _ = framework.run(query)
    matches = match_pattern(mapping, index, pattern)
    expected = []
    for b in matches:
        row = []
        for mc in columns:
            v = pattern.vertices[mc.var]
            table = mapping.vertex_table(v.label)
            row.append(table.value(b[mc.var], mc.attr))
        expected.append(tuple(row))
    assert sorted(result.rows) == sorted(expected)


def triangle_query():
    pattern = (
        PatternGraph.builder()
        .vertex("p1", "Person")
        .vertex("p2", "Person")
        .vertex("m", "Message")
        .edge("p1", "p2", "Knows", name="k")
        .edge("p1", "m", "Likes", name="l1")
        .edge("p2", "m", "Likes", name="l2")
        .build()
    )
    clause = GraphTableClause(
        "G",
        pattern,
        [
            MatchColumn("p1", "name", "n1"),
            MatchColumn("p2", "name", "n2"),
            MatchColumn("k", "date", "kdate"),
        ],
    )
    return SPJMQuery(
        graph_table=clause,
        predicates=[eq(col("g.n1"), lit("Tom")), gt(col("g.kdate"), lit("2000-01-01"))],
        projections=[(col("g.n2"), "friend")],
    )


def test_filter_into_match_moves_both_kinds(fig2m):
    query = triangle_query()
    pushed, report = apply_filter_into_match(query)
    assert report.pushed_constraints == 2
    assert pushed.predicates == []
    clause = pushed.graph_table
    assert clause.pattern.vertices["p1"].predicate is not None
    assert clause.pattern.edges["k"].predicate is not None


def test_filter_into_match_preserves_results(fig2m):
    catalog, _, _ = fig2m
    query = triangle_query()
    with_rules = RelGoFramework(catalog, "G", RelGoConfig(enable_rules=True))
    without = RelGoFramework(catalog, "G", RelGoConfig(enable_rules=False))
    r1, _ = with_rules.run(query)
    r2, _ = without.run(query)
    assert r1.sorted_rows() == r2.sorted_rows()


def test_filter_into_match_skips_cross_var_predicates(fig2m):
    query = triangle_query()
    query.predicates.append(eq(col("g.n1"), col("g.n2")))
    pushed, report = apply_filter_into_match(query)
    assert report.pushed_constraints == 2
    assert len(pushed.predicates) == 1  # the cross-var one stays relational


def test_trim_and_fuse_keeps_projected_edge(fig2m):
    query = triangle_query()
    trimmed, report = apply_trim_and_fuse(query)
    # kdate is referenced by a predicate -> k survives; l1/l2 are trimmed.
    assert "k" in report.needed_edge_vars
    assert sorted(report.trimmed_edge_vars) == ["l1", "l2"]


def test_trim_and_fuse_drops_unused_columns(fig2m):
    query = triangle_query()
    query.predicates = []  # nothing references kdate or n1 anymore
    trimmed, report = apply_trim_and_fuse(query)
    clause = trimmed.graph_table
    assert [c.alias for c in clause.columns] == ["n2"]
    assert sorted(report.trimmed_columns) == ["kdate", "n1"]
    assert report.needed_edge_vars == frozenset()


def test_translate_match_rejects_bad_endpoints(fig2m):
    catalog, mapping, _ = fig2m
    bad = (
        PatternGraph.builder()
        .vertex("m", "Message")
        .vertex("p", "Person")
        .edge("m", "p", "Likes")  # Likes goes Person -> Message
        .build()
    )
    clause = GraphTableClause("G", bad, [MatchColumn("p", "name", "n")])
    from repro.errors import BindError

    with pytest.raises(BindError):
        translate_match(clause, mapping, catalog)
