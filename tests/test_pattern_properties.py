"""Property-based tests for pattern canonicalization and sub-patterns."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.pattern import PatternEdge, PatternGraph, PatternVertex
from repro.graph.search_space import path_pattern

LABELS = ["person", "post"]
EDGE_LABELS = ["knows", "likes"]


@st.composite
def connected_patterns(draw):
    """Random connected patterns with 2..6 vertices."""
    n = draw(st.integers(2, 6))
    vertices = [
        PatternVertex(f"v{i}", draw(st.sampled_from(LABELS))) for i in range(n)
    ]
    edges = []
    # Spanning-tree edges guarantee connectivity.
    for i in range(1, n):
        j = draw(st.integers(0, i - 1))
        src, dst = (f"v{i}", f"v{j}") if draw(st.booleans()) else (f"v{j}", f"v{i}")
        edges.append(PatternEdge(f"e{len(edges)}", draw(st.sampled_from(EDGE_LABELS)), src, dst))
    # A few extra edges.
    for _ in range(draw(st.integers(0, 3))):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i == j:
            continue
        edges.append(
            PatternEdge(
                f"e{len(edges)}", draw(st.sampled_from(EDGE_LABELS)), f"v{i}", f"v{j}"
            )
        )
    return PatternGraph(vertices, edges)


def renamed_copy(pattern: PatternGraph, seed: int) -> PatternGraph:
    rng = random.Random(seed)
    names = list(pattern.vertices)
    shuffled = names[:]
    rng.shuffle(shuffled)
    mapping = dict(zip(names, shuffled))
    vertices = [
        PatternVertex(mapping[v.name], v.label, v.predicate)
        for v in pattern.vertices.values()
    ]
    edge_names = list(pattern.edges)
    shuffled_edges = edge_names[:]
    rng.shuffle(shuffled_edges)
    edge_map = dict(zip(edge_names, shuffled_edges))
    edges = [
        PatternEdge(edge_map[e.name], e.label, mapping[e.src], mapping[e.dst], e.predicate)
        for e in pattern.edges.values()
    ]
    return PatternGraph(vertices, edges)


@settings(max_examples=150, deadline=None)
@given(connected_patterns(), st.integers(0, 1000))
def test_canonical_code_invariant_under_renaming(pattern, seed):
    assert pattern.canonical_code() == renamed_copy(pattern, seed).canonical_code()


@settings(max_examples=100, deadline=None)
@given(connected_patterns())
def test_canonical_code_distinguishes_label_change(pattern):
    first = next(iter(pattern.vertices.values()))
    other_label = "post" if first.label == "person" else "person"
    changed = PatternGraph(
        [
            PatternVertex(v.name, other_label if v.name == first.name else v.label)
            for v in pattern.vertices.values()
        ],
        list(pattern.edges.values()),
    )
    # Changing one vertex label may coincide with an automorphism only if
    # another vertex already had the other label arrangement; at minimum the
    # multiset of labels must match for codes to match.
    if sorted(v.label for v in changed.vertices.values()) != sorted(
        v.label for v in pattern.vertices.values()
    ):
        assert changed.canonical_code() != pattern.canonical_code()


@settings(max_examples=100, deadline=None)
@given(connected_patterns())
def test_induced_subpattern_is_induced(pattern):
    names = sorted(pattern.vertices)[: max(1, len(pattern.vertices) - 1)]
    sub = pattern.induced_subpattern(set(names))
    for e in pattern.edges.values():
        if e.src in names and e.dst in names:
            assert e.name in sub.edges
    for e in sub.edges.values():
        assert e.src in names and e.dst in names


@settings(max_examples=100, deadline=None)
@given(connected_patterns())
def test_without_predicates_is_structural_identity(pattern):
    assert pattern.without_predicates().canonical_code() == pattern.canonical_code()


def test_star_of():
    p = path_pattern(2)  # v0 - v1 - v2
    star = p.star_of("v1")
    assert star.num_vertices == 3
    assert star.num_edges == 2
    leaf_star = p.star_of("v0")
    assert leaf_star.num_vertices == 2
    assert leaf_star.num_edges == 1


def test_constraint_changes_code():
    from repro.relational.expr import col, eq, lit

    p = path_pattern(2)
    constrained = p.with_vertex_constraint("v0", eq(col("name"), lit("x")))
    assert constrained.canonical_code() != p.canonical_code()
