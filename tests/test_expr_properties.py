"""Property-based tests for the expression layer (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expr import (
    Arith,
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    and_,
    compile_expr,
    compile_predicate,
    conjoin,
    referenced_columns,
    rename_columns,
    split_conjuncts,
    substitute_columns,
)

COLUMNS = ["t.a", "t.b", "t.c"]
LAYOUT = {name: i for i, name in enumerate(COLUMNS)}


@st.composite
def exprs(draw, depth: int = 0):
    if depth >= 3:
        return draw(
            st.one_of(
                st.sampled_from([ColumnRef(c) for c in COLUMNS]),
                st.integers(-5, 5).map(Literal),
            )
        )
    choice = draw(st.integers(0, 6))
    if choice == 0:
        return ColumnRef(draw(st.sampled_from(COLUMNS)))
    if choice == 1:
        return Literal(draw(st.integers(-5, 5)))
    if choice == 2:
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return Comparison(op, draw(exprs(depth + 1)), draw(exprs(depth + 1)))
    if choice == 3:
        op = draw(st.sampled_from(["AND", "OR"]))
        return BoolOp(op, (draw(exprs(depth + 1)), draw(exprs(depth + 1))))
    if choice == 4:
        return Not(draw(exprs(depth + 1)))
    if choice == 5:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return Arith(op, draw(exprs(depth + 1)), draw(exprs(depth + 1)))
    return InList(
        ColumnRef(draw(st.sampled_from(COLUMNS))),
        tuple(draw(st.lists(st.integers(-5, 5), min_size=1, max_size=3))),
    )


ROWS = st.tuples(
    st.one_of(st.none(), st.integers(-5, 5)),
    st.one_of(st.none(), st.integers(-5, 5)),
    st.one_of(st.none(), st.integers(-5, 5)),
)


@settings(max_examples=200, deadline=None)
@given(exprs(), ROWS)
def test_rename_identity_preserves_semantics(expr, row):
    renamed = rename_columns(expr, {c: c for c in COLUMNS})
    assert compile_expr(expr, LAYOUT)(row) == compile_expr(renamed, LAYOUT)(row)


@settings(max_examples=200, deadline=None)
@given(exprs(), ROWS)
def test_rename_roundtrip(expr, row):
    fwd = {"t.a": "x.a", "t.b": "x.b", "t.c": "x.c"}
    back = {v: k for k, v in fwd.items()}
    roundtripped = rename_columns(rename_columns(expr, fwd), back)
    assert str(roundtripped) == str(expr)
    assert compile_expr(expr, LAYOUT)(row) == compile_expr(roundtripped, LAYOUT)(row)


@settings(max_examples=200, deadline=None)
@given(exprs(), ROWS)
def test_substitute_identity(expr, row):
    substituted = substitute_columns(expr, {c: ColumnRef(c) for c in COLUMNS})
    assert compile_expr(expr, LAYOUT)(row) == compile_expr(substituted, LAYOUT)(row)


@settings(max_examples=200, deadline=None)
@given(st.lists(exprs(), min_size=1, max_size=4), ROWS)
def test_split_conjoin_roundtrip(conjuncts, row):
    combined = conjoin(conjuncts)
    assert combined is not None
    parts = split_conjuncts(combined)
    # Evaluating the AND of the parts equals evaluating the original AND
    # under predicate semantics (NULL collapses to False).
    lhs = compile_predicate(combined, LAYOUT)(row)
    rhs = all(compile_predicate(p, LAYOUT)(row) for p in parts)
    assert lhs == rhs


@settings(max_examples=200, deadline=None)
@given(exprs())
def test_referenced_columns_subset(expr):
    assert referenced_columns(expr) <= set(COLUMNS)


@settings(max_examples=100, deadline=None)
@given(exprs(), exprs(), ROWS)
def test_and_flattening_semantics(a, b, row):
    naive = BoolOp("AND", (a, b))
    flat = and_(a, b)
    assert compile_predicate(naive, LAYOUT)(row) == compile_predicate(flat, LAYOUT)(row)


def test_like_shapes():
    layout = {"s": 0}
    assert compile_predicate(Like(ColumnRef("s"), "ab%"), layout)(("abc",))
    assert compile_predicate(Like(ColumnRef("s"), "%bc"), layout)(("abc",))
    assert compile_predicate(Like(ColumnRef("s"), "%b%"), layout)(("abc",))
    assert compile_predicate(Like(ColumnRef("s"), "a_c"), layout)(("abc",))
    assert not compile_predicate(Like(ColumnRef("s"), "a_c"), layout)(("abdc",))
    assert compile_predicate(Like(ColumnRef("s"), "abc"), layout)(("abc",))


def test_null_semantics():
    layout = {"x": 0}
    ref = ColumnRef("x")
    assert compile_expr(Comparison("=", ref, Literal(1)), layout)((None,)) is None
    assert compile_predicate(Comparison("=", ref, Literal(1)), layout)((None,)) is False
    assert compile_expr(IsNull(ref), layout)((None,)) is True
    assert compile_expr(IsNull(ref, negated=True), layout)((None,)) is False
    # AND short-circuits on False even with NULLs present.
    pred = BoolOp("AND", (Comparison("=", ref, Literal(1)), Literal(False)))
    assert compile_expr(pred, layout)((None,)) is False


def test_columnar_compile_cache_distinguishes_equal_hashing_literals():
    # Literal(True) == Literal(1) == Literal(1.0) under Python equality, so
    # the compile memo must key on literal types too: each evaluator has
    # to emit its own literal's exact value and type (regression test).
    from repro.relational.expr import compile_expr_columnar

    for value in (True, 1, 1.0):
        ev = compile_expr_columnar(Literal(value), {})
        out = ev([], None, 2)
        assert out == [value, value]
        assert all(type(v) is type(value) for v in out)
