"""Setup shim.

The execution environment has no ``wheel`` package and no network, so PEP 517
editable installs (which need ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517`` take the legacy ``setup.py develop``
path, which works with plain setuptools.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
